//! Pull-model on-demand broadcast: clients send explicit requests up a
//! back channel; the server broadcasts *requested* items only, under a
//! scheduling policy.
//!
//! This is the pull side of the push/pull spectrum analysed in the
//! paper's refs \[2\] (Acharya, Franklin, Zdonik, SIGMOD 1997) and \[3\]
//! (Aksoy & Franklin, INFOCOM 1998). Two server policies are provided:
//!
//! * [`PullPolicy::Fcfs`] — serve requests in arrival order, with
//!   request consolidation (a queued item absorbs later requests for
//!   it, exactly like the DC's request absorption, Fig. 3 outcome 5);
//! * [`PullPolicy::Mrf`] — Most Requests First: each transmission
//!   serves the item with the largest waiter count (ties: earliest
//!   first request), the classic on-demand heuristic \[3\].
//!
//! The reproduction target is the qualitative threshold claim of \[2\]:
//! *"For a lightly loaded server the pull-based policy is the preferred
//! one. Contrary, the pure push-based policy works best on a saturated
//! server"* — demonstrated against [`crate::BroadcastSim`] by the
//! `exp_baselines` harness rate sweep.

use crate::measure::BcastMeasurements;
use crate::sim::ChannelConfig;
use datacyclotron::BatId;
use dc_workloads::{Dataset, ExecModel, QuerySpec};
use netsim::{EventQueue, SimTime};
use std::collections::HashMap;

/// Server scheduling policy for the on-demand queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PullPolicy {
    /// First-come-first-served over *items* (consolidated).
    #[default]
    Fcfs,
    /// Most-requests-first with earliest-arrival tie-break.
    Mrf,
}

enum Ev {
    Arrive(usize),
    /// A request reaches the server (uplink delay after arrival).
    ReqAtServer {
        item: BatId,
    },
    /// The server finished transmitting `item`.
    TxDone {
        item: BatId,
    },
    ProcDone {
        q: usize,
    },
}

struct QueryState {
    outstanding: usize,
    finished: bool,
}

/// A queued (consolidated) item on the server.
struct PendingItem {
    first_request: SimTime,
    /// Requests consolidated into this queue entry.
    demand: usize,
}

/// Pull-model simulator.
pub struct OnDemandSim {
    dataset: Dataset,
    queries: Vec<QuerySpec>,
    channel: ChannelConfig,
    policy: PullPolicy,
    events: EventQueue<Ev>,
    qstate: Vec<QueryState>,
    /// Client-side waiters per item: (query idx, need idx).
    waiting: HashMap<BatId, Vec<(usize, usize)>>,
    /// Server-side consolidated request queue.
    pending: HashMap<BatId, PendingItem>,
    /// FCFS arrival order of items in `pending`.
    fifo: std::collections::VecDeque<BatId>,
    /// Merge duplicate requests into one queued transmission. This is
    /// the DC's request-absorption insight applied server-side; the
    /// systems §7 discusses lacked it ("It does not combine client
    /// requests to reduce the stress on the channel"). Disabling it
    /// reproduces \[2\]'s pull collapse under load.
    consolidate: bool,
    busy: bool,
    m: BcastMeasurements,
}

impl OnDemandSim {
    pub fn new(
        dataset: Dataset,
        queries: Vec<QuerySpec>,
        channel: ChannelConfig,
        policy: PullPolicy,
    ) -> Self {
        let mut events = EventQueue::new();
        for (q, spec) in queries.iter().enumerate() {
            spec.validate().expect("invalid query spec");
            assert!(
                matches!(spec.model, ExecModel::PerBat { .. }),
                "broadcast baselines model PerBat workloads"
            );
            events.schedule(spec.arrival, Ev::Arrive(q));
        }
        let qstate = queries
            .iter()
            .map(|s| QueryState { outstanding: s.needs.len(), finished: false })
            .collect();
        OnDemandSim {
            dataset,
            queries,
            channel,
            policy,
            events,
            qstate,
            waiting: HashMap::new(),
            pending: HashMap::new(),
            fifo: std::collections::VecDeque::new(),
            consolidate: true,
            busy: false,
            m: BcastMeasurements::default(),
        }
    }

    /// Disable request consolidation: every request queues its own
    /// transmission, duplicates and all — the server model of \[1, 2\]
    /// that §7 contrasts with the DC's request absorption. FCFS only
    /// (MRF is defined over consolidated demand counts).
    pub fn without_consolidation(mut self) -> Self {
        assert_eq!(
            self.policy,
            PullPolicy::Fcfs,
            "unconsolidated service is FCFS over raw requests"
        );
        self.consolidate = false;
        self
    }

    /// Run until every query completes.
    pub fn run(mut self) -> BcastMeasurements {
        let total = self.queries.len();
        let mut completed = 0usize;
        while let Some((now, ev)) = self.events.pop() {
            match ev {
                Ev::Arrive(q) => self.on_arrive(now, q),
                Ev::ReqAtServer { item } => self.on_request(now, item),
                Ev::TxDone { item } => self.on_tx_done(now, item),
                Ev::ProcDone { q } => {
                    if self.on_proc_done(now, q) {
                        completed += 1;
                        if completed == total {
                            break;
                        }
                    }
                }
            }
        }
        self.m.completed = completed;
        self.m.failed = total - completed;
        self.m
    }

    fn on_arrive(&mut self, now: SimTime, q: usize) {
        let needs = self.queries[q].needs.clone();
        for (i, &need) in needs.iter().enumerate() {
            self.waiting.entry(need).or_default().push((q, i));
            // One explicit request per needed fragment, up the back
            // channel (propagation delay only; requests are tiny).
            self.events.schedule(now + self.channel.delay, Ev::ReqAtServer { item: need });
        }
    }

    fn on_request(&mut self, now: SimTime, item: BatId) {
        self.m.requests_received += 1;
        if !self.consolidate {
            // Raw FCFS: one queued transmission per request.
            self.fifo.push_back(item);
            if !self.busy {
                self.start_next(now);
            }
            return;
        }
        match self.pending.entry(item) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // Consolidated: the queued transmission will serve this
                // requester too.
                e.get_mut().demand += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(PendingItem { first_request: now, demand: 1 });
                self.fifo.push_back(item);
            }
        }
        if !self.busy {
            self.start_next(now);
        }
    }

    /// Pick the next item per policy and start its transmission.
    fn start_next(&mut self, now: SimTime) {
        if !self.consolidate {
            let Some(item) = self.fifo.pop_front() else {
                self.busy = false;
                return;
            };
            self.busy = true;
            let tx = self.channel.tx_time(self.dataset.size_of(item));
            self.events.schedule(now + tx, Ev::TxDone { item });
            return;
        }
        let item = match self.policy {
            PullPolicy::Fcfs => self.fifo.pop_front(),
            PullPolicy::Mrf => {
                let best = self
                    .pending
                    .iter()
                    .max_by(|(ba, a), (bb, b)| {
                        a.demand
                            .cmp(&b.demand)
                            .then(b.first_request.cmp(&a.first_request))
                            // Final deterministic tie-break on id.
                            .then(bb.0.cmp(&ba.0))
                    })
                    .map(|(&b, _)| b);
                if let Some(b) = best {
                    self.fifo.retain(|&x| x != b);
                }
                best
            }
        };
        let Some(item) = item else {
            self.busy = false;
            return;
        };
        self.busy = true;
        let entry = self.pending.remove(&item).expect("queued item has a pending entry");
        if entry.demand > 1 {
            self.m.coalesced_serves += 1;
        }
        let tx = self.channel.tx_time(self.dataset.size_of(item));
        self.events.schedule(now + tx, Ev::TxDone { item });
    }

    fn on_tx_done(&mut self, now: SimTime, item: BatId) {
        self.m.items_broadcast += 1;
        self.m.bytes_broadcast += self.dataset.size_of(item);
        if let Some(waiters) = self.waiting.remove(&item) {
            for (q, need_idx) in waiters {
                let ExecModel::PerBat { proc } = &self.queries[q].model else {
                    unreachable!("constructor rejects non-PerBat specs")
                };
                let done = now + self.channel.delay + proc[need_idx];
                self.events.schedule(done, Ev::ProcDone { q });
            }
        }
        self.start_next(now);
    }

    fn on_proc_done(&mut self, now: SimTime, q: usize) -> bool {
        let st = &mut self.qstate[q];
        st.outstanding -= 1;
        if st.outstanding > 0 || st.finished {
            return false;
        }
        st.finished = true;
        let spec = &self.queries[q];
        let lifetime = now.since(spec.arrival).as_secs_f64();
        self.m.lifetimes.push((spec.arrival.as_secs_f64(), lifetime, spec.tag));
        self.m.makespan = self.m.makespan.max(now.as_secs_f64());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimDuration;

    fn dataset(n: usize, size: u64) -> Dataset {
        Dataset { sizes: vec![size; n], owners: vec![0; n] }
    }

    fn one_query(arrival: SimTime, needs: Vec<BatId>, proc_ms: u64) -> QuerySpec {
        let n = needs.len();
        QuerySpec {
            arrival,
            node: 0,
            needs,
            model: ExecModel::PerBat { proc: vec![SimDuration::from_millis(proc_ms); n] },
            tag: 0,
        }
    }

    /// 1 MB at 8 Mb/s → 1 s per item; zero delay for easy arithmetic.
    fn slow_channel() -> ChannelConfig {
        ChannelConfig { bandwidth_bps: 8_000_000, delay: SimDuration::ZERO }
    }

    #[test]
    fn light_load_serves_immediately() {
        let ds = dataset(100, 1_000_000);
        // One query for one item on an idle server: latency = tx time.
        let q = one_query(SimTime::ZERO, vec![BatId(73)], 0);
        let m = OnDemandSim::new(ds, vec![q], slow_channel(), PullPolicy::Fcfs).run();
        assert_eq!(m.completed, 1);
        assert!((m.lifetimes[0].1 - 1.0).abs() < 1e-6, "{}", m.lifetimes[0].1);
        // Contrast with push over the same 100-item database: the flat
        // cycle averages ~50 s to reach a random item. The pull server
        // answered in 1 s — the light-load side of [2]'s threshold.
    }

    #[test]
    fn fcfs_serves_in_request_order() {
        let ds = dataset(3, 1_000_000);
        let q0 = one_query(SimTime::ZERO, vec![BatId(2)], 0);
        let q1 = one_query(SimTime::from_millis(10), vec![BatId(0)], 0);
        let m = OnDemandSim::new(ds, vec![q0, q1], slow_channel(), PullPolicy::Fcfs).run();
        // Item 2 transmits first (1 s), then item 0 (2 s).
        assert_eq!(m.completed, 2);
        let l0 = m.lifetimes.iter().find(|&&(a, _, _)| a == 0.0).unwrap().1;
        let l1 = m.lifetimes.iter().find(|&&(a, _, _)| a > 0.0).unwrap().1;
        assert!((l0 - 1.0).abs() < 1e-6);
        assert!((l1 - 1.99).abs() < 1e-6, "{l1}");
    }

    #[test]
    fn requests_consolidate() {
        let ds = dataset(2, 1_000_000);
        // 30 queries for the same item while the server is busy with
        // another: one transmission serves all.
        let mut queries = vec![one_query(SimTime::ZERO, vec![BatId(0)], 0)];
        for i in 0..30u64 {
            queries.push(one_query(SimTime::from_millis(100 + i), vec![BatId(1)], 0));
        }
        let m = OnDemandSim::new(ds, queries, slow_channel(), PullPolicy::Fcfs).run();
        assert_eq!(m.completed, 31);
        assert_eq!(m.items_broadcast, 2, "consolidation must merge the 30 requests");
        assert_eq!(m.requests_received, 31);
        assert!(m.coalesced_serves >= 1);
    }

    #[test]
    fn mrf_prefers_popular_items() {
        let ds = dataset(3, 1_000_000);
        // While the server transmits item 0, one request for item 1
        // arrives before five requests for item 2. FCFS would send 1
        // first; MRF sends 2 first.
        let mut queries = vec![one_query(SimTime::ZERO, vec![BatId(0)], 0)];
        queries.push(one_query(SimTime::from_millis(100), vec![BatId(1)], 0));
        for i in 0..5u64 {
            queries.push(one_query(SimTime::from_millis(200 + i), vec![BatId(2)], 0));
        }
        let run =
            |policy| OnDemandSim::new(ds.clone(), queries.clone(), slow_channel(), policy).run();
        let fcfs = run(PullPolicy::Fcfs);
        let mrf = run(PullPolicy::Mrf);
        // Identify item-1 and item-2 queries by arrival time.
        let life_of = |m: &BcastMeasurements, lo: f64, hi: f64| -> f64 {
            m.lifetimes
                .iter()
                .filter(|&&(a, _, _)| a >= lo && a < hi)
                .map(|&(_, l, _)| l)
                .fold(0.0, f64::max)
        };
        let fcfs_item2 = life_of(&fcfs, 0.15, 0.3);
        let mrf_item2 = life_of(&mrf, 0.15, 0.3);
        assert!(
            mrf_item2 < fcfs_item2,
            "MRF should serve the popular item sooner ({mrf_item2} vs {fcfs_item2})"
        );
        // Aggregate waiting time is lower under MRF for this skew.
        let fcfs_total: f64 = fcfs.lifetimes.iter().map(|&(_, l, _)| l).sum();
        let mrf_total: f64 = mrf.lifetimes.iter().map(|&(_, l, _)| l).sum();
        assert!(mrf_total < fcfs_total);
    }

    #[test]
    fn saturation_grows_the_backlog() {
        // 50 distinct items requested back-to-back at t≈0 on a 1-item/s
        // server: the last one waits ~50 s — the saturated side of
        // [2]'s threshold, where push's fixed cycle would be better.
        let ds = dataset(50, 1_000_000);
        let queries: Vec<QuerySpec> = (0..50u32)
            .map(|i| one_query(SimTime::from_millis(u64::from(i)), vec![BatId(i)], 0))
            .collect();
        let m = OnDemandSim::new(ds, queries, slow_channel(), PullPolicy::Fcfs).run();
        assert_eq!(m.completed, 50);
        let worst = m.lifetime_quantile(1.0);
        assert!(worst > 45.0, "backlog latency {worst}");
        assert_eq!(m.items_broadcast, 50);
    }

    #[test]
    fn deterministic_across_runs_both_policies() {
        let ds = dataset(20, 3_000_000);
        let queries: Vec<QuerySpec> = (0..40u64)
            .map(|i| one_query(SimTime::from_millis(i * 53), vec![BatId((i % 20) as u32)], 15))
            .collect();
        for policy in [PullPolicy::Fcfs, PullPolicy::Mrf] {
            let a = OnDemandSim::new(ds.clone(), queries.clone(), slow_channel(), policy).run();
            let b = OnDemandSim::new(ds.clone(), queries.clone(), slow_channel(), policy).run();
            assert_eq!(a.lifetimes, b.lifetimes, "{policy:?}");
            assert_eq!(a.items_broadcast, b.items_broadcast);
        }
    }

    #[test]
    fn unconsolidated_pull_collapses_under_load() {
        // 60 queries for the same item in a burst. Consolidated: one
        // transmission serves all. Unconsolidated ([1,2]'s server): 60
        // queued transmissions — the first serves everyone, the other
        // 59 burn the channel, and anything queued behind them waits a
        // minute. This is the collapse [2] describes and the DC's
        // request absorption prevents (§7).
        let ds = dataset(2, 1_000_000);
        let mut queries: Vec<QuerySpec> =
            (0..60u64).map(|i| one_query(SimTime::from_millis(i), vec![BatId(0)], 0)).collect();
        // A straggler wanting the other item, queued behind the flood.
        queries.push(one_query(SimTime::from_millis(100), vec![BatId(1)], 0));
        let run = |consolidate: bool| {
            let sim =
                OnDemandSim::new(ds.clone(), queries.clone(), slow_channel(), PullPolicy::Fcfs);
            let sim = if consolidate { sim } else { sim.without_consolidation() };
            sim.run()
        };
        let merged = run(true);
        let raw = run(false);
        assert_eq!(merged.completed, 61);
        assert_eq!(raw.completed, 61);
        // Consolidation merges everything queued; the one transmission
        // already in flight when the flood starts cannot absorb, so
        // item 0 goes out twice (in-flight + queued) plus item 1.
        assert_eq!(merged.items_broadcast, 3);
        assert_eq!(raw.items_broadcast, 61, "59 duplicate transmissions");
        let straggler =
            |m: &BcastMeasurements| m.lifetimes.iter().find(|&&(a, _, _)| a > 0.09).unwrap().1;
        assert!(straggler(&merged) < 3.0, "{}", straggler(&merged));
        assert!(
            straggler(&raw) > 50.0,
            "straggler must wait out the duplicate flood: {}",
            straggler(&raw)
        );
    }

    #[test]
    fn multi_need_pull_query_completes() {
        let ds = dataset(4, 1_000_000);
        let q = one_query(SimTime::ZERO, vec![BatId(0), BatId(3), BatId(2)], 100);
        let m = OnDemandSim::new(ds, vec![q], slow_channel(), PullPolicy::Fcfs).run();
        assert_eq!(m.completed, 1);
        // Three sequential transmissions (3 s) + 100 ms processing.
        assert!((m.lifetimes[0].1 - 3.1).abs() < 1e-6, "{}", m.lifetimes[0].1);
    }
}
