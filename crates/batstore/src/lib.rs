//! # batstore — a MonetDB-style binary column kernel
//!
//! The Data Cyclotron paper (§3) builds on MonetDB, whose storage unit is
//! the *Binary Association Table* (BAT): a two-column table mapping a head
//! (usually a dense, virtual OID sequence) to a tail of base-type values.
//! Query plans are compositions of binary relational-algebra operators
//! over BATs. This crate is that kernel, built from scratch:
//!
//! * [`Column`] — typed vectors (`void`/`oid`/`int`/`lng`/`dbl`/`str`/
//!   `bool`/`date`) with a contiguous string heap,
//! * [`Bat`] — head/tail pairs with lightweight properties (sortedness,
//!   key-ness) used to pick algorithms,
//! * [`ops`] — the operator library appearing in the paper's MAL plans
//!   (`select`, `uselect`, `join`, `reverse`, `mark`, `mirror`, `semijoin`)
//!   plus the usual analytic set (group/aggregate, sort, slice, topn),
//! * [`Catalog`] / [`BatStore`] — schema.table.column → BAT binding
//!   (the `sql.bind` of the plans),
//! * [`storage`] — binary persistence (the "cold data on attached disks"
//!   of the paper's data loader),
//! * [`resultset`] — typed query results (named, typed columns plus
//!   DDL/DML outcomes) with a binary wire form reusing the BAT encoding,
//! * [`partition`] — horizontal fragmentation into ring-sized BATs.

pub mod bat;
pub mod catalog;
pub mod column;
pub mod error;
pub mod heap;
pub mod ops;
pub mod partition;
pub mod resultset;
pub mod storage;
pub mod value;

pub use bat::{Bat, Props};
pub use catalog::{BatKey, BatStore, Catalog, ColDef, TableDef};
pub use column::Column;
pub use error::{BatError, Result};
pub use heap::StrCol;
pub use ops::RowPredicate;
pub use resultset::{ResultColumn, ResultSet};
pub use value::{ColType, Val};
