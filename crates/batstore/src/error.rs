//! Error type shared across the kernel.

use std::fmt;

#[derive(Debug)]
pub enum BatError {
    /// Operator applied to incompatible column types.
    TypeMismatch { expected: &'static str, got: String },
    /// Head/tail (or argument) lengths disagree.
    LengthMismatch { left: usize, right: usize },
    /// Catalog lookup failure.
    NotFound(String),
    /// Name collision on create.
    AlreadyExists(String),
    /// Persistence failure.
    Io(std::io::Error),
    /// Corrupt or foreign file while loading.
    Corrupt(String),
    /// Operator-specific invariant violated (message explains).
    Invalid(String),
    /// Arithmetic result exceeds the output type's range (e.g. a 64-bit
    /// sum overflowing). Classified so SQL-reachable kernels report it
    /// as a query error instead of panicking or silently wrapping.
    Overflow(String),
}

pub type Result<T> = std::result::Result<T, BatError>;

impl fmt::Display for BatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            BatError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            BatError::NotFound(what) => write!(f, "not found: {what}"),
            BatError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            BatError::Io(e) => write!(f, "io error: {e}"),
            BatError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            BatError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
            BatError::Overflow(msg) => write!(f, "arithmetic overflow: {msg}"),
        }
    }
}

impl std::error::Error for BatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BatError {
    fn from(e: std::io::Error) -> Self {
        BatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BatError::TypeMismatch { expected: "int", got: "str".into() };
        assert!(e.to_string().contains("expected int"));
        let e = BatError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains("3 vs 5"));
        let e = BatError::NotFound("sys.t.id".into());
        assert!(e.to_string().contains("sys.t.id"));
    }

    #[test]
    fn io_conversion_preserves_source() {
        let io = std::io::Error::other("boom");
        let e: BatError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
