//! The SQL catalog and BAT registry: `schema.table.column → BAT`.
//! This is what MonetDB's `sql.bind` resolves against (paper §3.2) and
//! what the Data Cyclotron's data loader administers per node (structure
//! S1 owns a subset of these BATs).

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::value::{ColType, Val};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Stable identifier of a BAT inside a [`BatStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BatKey(pub u32);

impl fmt::Display for BatKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bat#{}", self.0)
    }
}

/// Column definition inside a table.
#[derive(Clone, Debug)]
pub struct ColDef {
    pub name: String,
    pub ty: ColType,
    pub bat: BatKey,
}

/// Table definition.
#[derive(Clone, Debug)]
pub struct TableDef {
    pub schema: String,
    pub name: String,
    pub columns: Vec<ColDef>,
    pub row_count: usize,
}

impl TableDef {
    pub fn column(&self, name: &str) -> Option<&ColDef> {
        self.columns.iter().find(|c| c.name == name)
    }
}

/// The BAT registry: owns the actual column data. BATs are handed out as
/// `Arc<Bat>` so the interpreter can share them across plan threads
/// without copies (the paper's "pointer to a memory mapped region").
#[derive(Default)]
pub struct BatStore {
    bats: Vec<Option<Arc<Bat>>>,
}

impl BatStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, bat: Bat) -> BatKey {
        let key = BatKey(self.bats.len() as u32);
        self.bats.push(Some(Arc::new(bat)));
        key
    }

    pub fn insert_shared(&mut self, bat: Arc<Bat>) -> BatKey {
        let key = BatKey(self.bats.len() as u32);
        self.bats.push(Some(bat));
        key
    }

    pub fn get(&self, key: BatKey) -> Result<Arc<Bat>> {
        self.bats
            .get(key.0 as usize)
            .and_then(|o| o.clone())
            .ok_or_else(|| BatError::NotFound(key.to_string()))
    }

    /// Replace the BAT behind a key (multi-version updates, §6.4).
    pub fn replace(&mut self, key: BatKey, bat: Bat) -> Result<()> {
        let slot =
            self.bats.get_mut(key.0 as usize).ok_or_else(|| BatError::NotFound(key.to_string()))?;
        *slot = Some(Arc::new(bat));
        Ok(())
    }

    /// Drop a BAT (frees memory; the key stays burned).
    pub fn remove(&mut self, key: BatKey) -> Result<Arc<Bat>> {
        let slot =
            self.bats.get_mut(key.0 as usize).ok_or_else(|| BatError::NotFound(key.to_string()))?;
        slot.take().ok_or_else(|| BatError::NotFound(key.to_string()))
    }

    pub fn len(&self) -> usize {
        self.bats.iter().filter(|b| b.is_some()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn total_bytes(&self) -> usize {
        self.bats.iter().flatten().map(|b| b.byte_size()).sum()
    }
}

/// The SQL catalog.
#[derive(Default)]
pub struct Catalog {
    /// `schema.table` → definition.
    tables: BTreeMap<String, TableDef>,
}

fn qual(schema: &str, table: &str) -> String {
    format!("{schema}.{table}")
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table from column specs and row-major data. Convenience
    /// for tests and examples; bulk loads use `create_table_columnar`.
    pub fn create_table(
        &mut self,
        store: &mut BatStore,
        schema: &str,
        table: &str,
        cols: &[(&str, ColType)],
        rows: &[Vec<Val>],
    ) -> Result<()> {
        let mut columns: Vec<Column> = cols.iter().map(|&(_, ty)| Column::empty(ty)).collect();
        for row in rows {
            if row.len() != cols.len() {
                return Err(BatError::LengthMismatch { left: row.len(), right: cols.len() });
            }
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v)?;
            }
        }
        self.create_table_columnar(
            store,
            schema,
            table,
            cols.iter().map(|&(n, _)| n).zip(columns).collect(),
        )
    }

    /// Create a table from complete columns.
    pub fn create_table_columnar(
        &mut self,
        store: &mut BatStore,
        schema: &str,
        table: &str,
        cols: Vec<(&str, Column)>,
    ) -> Result<()> {
        let key = qual(schema, table);
        if self.tables.contains_key(&key) {
            return Err(BatError::AlreadyExists(key));
        }
        let row_count = cols.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut columns = Vec::with_capacity(cols.len());
        for (name, col) in cols {
            if col.len() != row_count {
                return Err(BatError::LengthMismatch { left: col.len(), right: row_count });
            }
            let ty = col.col_type();
            let bat = store.insert(Bat::dense(col));
            columns.push(ColDef { name: name.to_string(), ty, bat });
        }
        self.tables.insert(
            key,
            TableDef { schema: schema.to_string(), name: table.to_string(), columns, row_count },
        );
        Ok(())
    }

    /// Append rows to an existing table, column-at-a-time. Every column
    /// of the table must appear exactly once in `cols` and all appended
    /// columns must have the same length (SQL INSERT semantics).
    pub fn append_rows(
        &mut self,
        store: &mut BatStore,
        schema: &str,
        table: &str,
        cols: &[(String, Column)],
    ) -> Result<usize> {
        let def = self
            .tables
            .get(&qual(schema, table))
            .ok_or_else(|| BatError::NotFound(qual(schema, table)))?;
        if cols.len() != def.columns.len() {
            return Err(BatError::Invalid(format!(
                "INSERT must cover all {} columns of {}, got {}",
                def.columns.len(),
                qual(schema, table),
                cols.len()
            )));
        }
        let added = cols.first().map(|(_, c)| c.len()).unwrap_or(0);
        let mut keyed: Vec<(BatKey, &Column)> = Vec::with_capacity(cols.len());
        for (name, col) in cols {
            let cd = def
                .column(name)
                .ok_or_else(|| BatError::NotFound(format!("{schema}.{table}.{name}")))?;
            if col.len() != added {
                return Err(BatError::LengthMismatch { left: col.len(), right: added });
            }
            keyed.push((cd.bat, col));
        }
        // Validate all extensions before mutating any column so a type
        // error cannot leave the table ragged.
        let mut extended = Vec::with_capacity(keyed.len());
        for (key, col) in keyed {
            extended.push((key, store.get(key)?.extend_tail(col)?));
        }
        for (key, bat) in extended {
            store.replace(key, bat)?;
        }
        self.tables.get_mut(&qual(schema, table)).expect("looked up above").row_count += added;
        Ok(added)
    }

    /// `UPDATE`: write each assignment's value into every row matching
    /// the predicate conjunction (§6.4's owner-side in-place rewrite on
    /// a single node). Returns the number of rows touched. Assignments
    /// and predicates are validated — and the matching rows computed —
    /// before any column changes, so a bad statement leaves the table
    /// untouched.
    pub fn update_rows(
        &mut self,
        store: &mut BatStore,
        schema: &str,
        table: &str,
        assigns: &[(String, Val)],
        preds: &[crate::ops::RowPredicate],
    ) -> Result<usize> {
        if assigns.is_empty() {
            return Err(BatError::Invalid("UPDATE needs at least one assignment".into()));
        }
        let def = self.table(schema, table)?;
        // Resolve assignment columns up front: an UPDATE naming a ghost
        // or duplicate column, or assigning an incompatible value, fails
        // whether or not anything matches.
        let mut targets = Vec::with_capacity(assigns.len());
        let mut seen: Vec<&str> = Vec::with_capacity(assigns.len());
        for (name, v) in assigns {
            if seen.contains(&name.as_str()) {
                return Err(BatError::Invalid(format!("column '{name}' assigned twice")));
            }
            seen.push(name);
            let cd = def
                .column(name)
                .ok_or_else(|| BatError::NotFound(format!("{schema}.{table}.{name}")))?;
            Column::empty(cd.ty).push(v)?;
            targets.push((cd.bat, v));
        }
        let rows = {
            let lookup = |name: &str| def.column(name).and_then(|c| store.get(c.bat).ok());
            crate::ops::matching_rows(&lookup, def.row_count, preds)?
        };
        if rows.is_empty() {
            return Ok(0);
        }
        // Stage every rewritten column before replacing any, so a type
        // error cannot leave the table half-updated.
        let mut staged = Vec::with_capacity(targets.len());
        for (key, v) in targets {
            staged.push((key, crate::ops::scatter_const(&*store.get(key)?, &rows, v)?));
        }
        for (key, bat) in staged {
            store.replace(key, bat)?;
        }
        Ok(rows.len())
    }

    /// `DELETE`: remove every row matching the predicate conjunction
    /// from all columns in lockstep. Returns the number of rows removed.
    pub fn delete_rows(
        &mut self,
        store: &mut BatStore,
        schema: &str,
        table: &str,
        preds: &[crate::ops::RowPredicate],
    ) -> Result<usize> {
        let def = self.table(schema, table)?;
        let rows = {
            let lookup = |name: &str| def.column(name).and_then(|c| store.get(c.bat).ok());
            crate::ops::matching_rows(&lookup, def.row_count, preds)?
        };
        if rows.is_empty() {
            return Ok(0);
        }
        let mut staged = Vec::with_capacity(def.columns.len());
        for cd in &def.columns {
            staged.push((cd.bat, crate::ops::erase_rows(&*store.get(cd.bat)?, &rows)?));
        }
        for (key, bat) in staged {
            store.replace(key, bat)?;
        }
        self.tables.get_mut(&qual(schema, table)).expect("looked up above").row_count -= rows.len();
        Ok(rows.len())
    }

    pub fn drop_table(&mut self, store: &mut BatStore, schema: &str, table: &str) -> Result<()> {
        let def = self
            .tables
            .remove(&qual(schema, table))
            .ok_or_else(|| BatError::NotFound(qual(schema, table)))?;
        for c in &def.columns {
            let _ = store.remove(c.bat);
        }
        Ok(())
    }

    pub fn table(&self, schema: &str, table: &str) -> Result<&TableDef> {
        self.tables.get(&qual(schema, table)).ok_or_else(|| BatError::NotFound(qual(schema, table)))
    }

    /// Find a table by bare name across schemas (SQL front-end
    /// convenience; ambiguity is an error).
    pub fn table_by_name(&self, table: &str) -> Result<&TableDef> {
        let mut hits = self.tables.values().filter(|t| t.name == table);
        let first = hits.next().ok_or_else(|| BatError::NotFound(table.to_string()))?;
        if hits.next().is_some() {
            return Err(BatError::Invalid(format!("ambiguous table name: {table}")));
        }
        Ok(first)
    }

    /// `sql.bind(schema, table, column, access)` — resolve a persistent
    /// column BAT. `access` 0 is the readable base column (other access
    /// modes carry deltas in MonetDB; only 0 is meaningful here).
    pub fn bind(&self, schema: &str, table: &str, column: &str) -> Result<BatKey> {
        let t = self.table(schema, table)?;
        t.column(column)
            .map(|c| c.bat)
            .ok_or_else(|| BatError::NotFound(format!("{schema}.{table}.{column}")))
    }

    pub fn tables(&self) -> impl Iterator<Item = &TableDef> {
        self.tables.values()
    }

    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, BatStore) {
        let mut cat = Catalog::new();
        let mut store = BatStore::new();
        cat.create_table(
            &mut store,
            "sys",
            "t",
            &[("id", ColType::Int), ("name", ColType::Str)],
            &[vec![Val::Int(1), Val::from("one")], vec![Val::Int(2), Val::from("two")]],
        )
        .unwrap();
        (cat, store)
    }

    #[test]
    fn bind_resolves() {
        let (cat, store) = setup();
        let key = cat.bind("sys", "t", "id").unwrap();
        let bat = store.get(key).unwrap();
        assert_eq!(bat.count(), 2);
        assert_eq!(bat.tail_type(), ColType::Int);
    }

    #[test]
    fn bind_missing_column_errs() {
        let (cat, _) = setup();
        assert!(cat.bind("sys", "t", "nope").is_err());
        assert!(cat.bind("sys", "missing", "id").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (mut cat, mut store) = setup();
        let r = cat.create_table(&mut store, "sys", "t", &[("x", ColType::Int)], &[]);
        assert!(matches!(r, Err(BatError::AlreadyExists(_))));
    }

    #[test]
    fn ragged_rows_rejected() {
        let mut cat = Catalog::new();
        let mut store = BatStore::new();
        let r = cat.create_table(
            &mut store,
            "sys",
            "bad",
            &[("a", ColType::Int), ("b", ColType::Int)],
            &[vec![Val::Int(1)]],
        );
        assert!(r.is_err());
    }

    #[test]
    fn drop_table_frees_bats() {
        let (mut cat, mut store) = setup();
        assert_eq!(store.len(), 2);
        cat.drop_table(&mut store, "sys", "t").unwrap();
        assert_eq!(store.len(), 0);
        assert!(cat.table("sys", "t").is_err());
    }

    #[test]
    fn table_by_name_unique() {
        let (mut cat, mut store) = setup();
        assert_eq!(cat.table_by_name("t").unwrap().row_count, 2);
        cat.create_table(&mut store, "other", "t", &[("x", ColType::Int)], &[]).unwrap();
        assert!(cat.table_by_name("t").is_err(), "ambiguous now");
    }

    #[test]
    fn append_rows_grows_all_columns() {
        let (mut cat, mut store) = setup();
        let n = cat
            .append_rows(
                &mut store,
                "sys",
                "t",
                &[
                    ("id".to_string(), Column::from(vec![3, 4])),
                    ("name".to_string(), Column::from(vec!["three", "four"])),
                ],
            )
            .unwrap();
        assert_eq!(n, 2);
        let def = cat.table("sys", "t").unwrap();
        assert_eq!(def.row_count, 4);
        let ids = store.get(def.column("id").unwrap().bat).unwrap();
        assert_eq!(ids.count(), 4);
        assert_eq!(ids.bun(3).1, Val::Int(4));
    }

    #[test]
    fn append_rows_rejects_partial_or_ragged() {
        let (mut cat, mut store) = setup();
        // Missing a column.
        assert!(cat
            .append_rows(&mut store, "sys", "t", &[("id".to_string(), Column::from(vec![3]))])
            .is_err());
        // Ragged lengths.
        assert!(cat
            .append_rows(
                &mut store,
                "sys",
                "t",
                &[
                    ("id".to_string(), Column::from(vec![3, 4])),
                    ("name".to_string(), Column::from(vec!["x"])),
                ],
            )
            .is_err());
        // Type mismatch leaves the table untouched.
        assert!(cat
            .append_rows(
                &mut store,
                "sys",
                "t",
                &[
                    ("id".to_string(), Column::from(vec!["oops"])),
                    ("name".to_string(), Column::from(vec!["x"])),
                ],
            )
            .is_err());
        assert_eq!(cat.table("sys", "t").unwrap().row_count, 2, "no partial append");
        assert_eq!(store.get(cat.bind("sys", "t", "id").unwrap()).unwrap().count(), 2);
    }

    #[test]
    fn update_rows_rewrites_matching_rows_only() {
        use crate::ops::{CmpOp, RowPredicate};
        let (mut cat, mut store) = setup();
        let n = cat
            .update_rows(
                &mut store,
                "sys",
                "t",
                &[("name".to_string(), Val::from("won"))],
                &[RowPredicate::Cmp { column: "id".into(), op: CmpOp::Eq, value: Val::Int(1) }],
            )
            .unwrap();
        assert_eq!(n, 1);
        let names = store.get(cat.bind("sys", "t", "name").unwrap()).unwrap();
        assert_eq!(names.bun(0).1, Val::from("won"));
        assert_eq!(names.bun(1).1, Val::from("two"), "non-matching row untouched");
        assert_eq!(cat.table("sys", "t").unwrap().row_count, 2, "UPDATE never changes row count");
        // No matches → 0 affected, nothing rewritten.
        let n = cat
            .update_rows(
                &mut store,
                "sys",
                "t",
                &[("id".to_string(), Val::Int(9))],
                &[RowPredicate::Cmp { column: "id".into(), op: CmpOp::Eq, value: Val::Int(77) }],
            )
            .unwrap();
        assert_eq!(n, 0);
        // Bad assignment column / type errors leave the table untouched.
        assert!(cat
            .update_rows(&mut store, "sys", "t", &[("ghost".to_string(), Val::Int(1))], &[])
            .is_err());
        assert!(cat
            .update_rows(&mut store, "sys", "t", &[("id".to_string(), Val::from("x"))], &[])
            .is_err());
        assert!(cat.update_rows(&mut store, "sys", "t", &[], &[]).is_err(), "empty SET");
        // A duplicate assignment is rejected (live apply and WAL replay
        // could disagree on which value wins), and a type-mismatched
        // value fails even when the WHERE clause matches nothing.
        assert!(cat
            .update_rows(
                &mut store,
                "sys",
                "t",
                &[("id".to_string(), Val::Int(1)), ("id".to_string(), Val::Int(2))],
                &[],
            )
            .is_err());
        assert!(cat
            .update_rows(
                &mut store,
                "sys",
                "t",
                &[("id".to_string(), Val::from("x"))],
                &[RowPredicate::Cmp { column: "id".into(), op: CmpOp::Eq, value: Val::Int(777) }],
            )
            .is_err());
        assert_eq!(store.get(cat.bind("sys", "t", "id").unwrap()).unwrap().bun(0).1, Val::Int(1));
    }

    #[test]
    fn delete_rows_shrinks_all_columns_in_lockstep() {
        use crate::ops::{CmpOp, RowPredicate};
        let (mut cat, mut store) = setup();
        let n = cat
            .delete_rows(
                &mut store,
                "sys",
                "t",
                &[RowPredicate::Cmp { column: "id".into(), op: CmpOp::Eq, value: Val::Int(1) }],
            )
            .unwrap();
        assert_eq!(n, 1);
        let def = cat.table("sys", "t").unwrap();
        assert_eq!(def.row_count, 1);
        for c in &def.columns {
            assert_eq!(store.get(c.bat).unwrap().count(), 1, "column {}", c.name);
        }
        assert_eq!(
            store.get(cat.bind("sys", "t", "name").unwrap()).unwrap().bun(0).1,
            Val::from("two")
        );
        // Unconditional DELETE empties the table but keeps its schema.
        let n = cat.delete_rows(&mut store, "sys", "t", &[]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cat.table("sys", "t").unwrap().row_count, 0);
        assert!(cat.bind("sys", "t", "id").is_ok());
    }

    #[test]
    fn store_replace_and_remove() {
        let mut store = BatStore::new();
        let k = store.insert(Bat::dense(Column::from(vec![1, 2, 3])));
        assert_eq!(store.get(k).unwrap().count(), 3);
        store.replace(k, Bat::dense(Column::from(vec![9]))).unwrap();
        assert_eq!(store.get(k).unwrap().count(), 1);
        store.remove(k).unwrap();
        assert!(store.get(k).is_err());
        assert!(store.remove(k).is_err(), "double remove");
    }

    #[test]
    fn total_bytes_tracks() {
        let (_, store) = setup();
        assert!(store.total_bytes() > 0);
    }
}
