//! Scalar values and column types.
//!
//! `Val` is the boxed scalar used at the edges of the kernel (constants in
//! plans, result rendering); the hot paths operate on typed vectors and
//! never materialize `Val`s.

use std::cmp::Ordering;
use std::fmt;

/// The base types supported by the kernel. `Void` is the virtual dense
/// OID sequence MonetDB uses for heads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColType {
    Void,
    Oid,
    Int,
    Lng,
    Dbl,
    Str,
    Bool,
    Date,
}

impl ColType {
    pub fn name(self) -> &'static str {
        match self {
            ColType::Void => "void",
            ColType::Oid => "oid",
            ColType::Int => "int",
            ColType::Lng => "lng",
            ColType::Dbl => "dbl",
            ColType::Str => "str",
            ColType::Bool => "bit",
            ColType::Date => "date",
        }
    }

    pub fn from_name(s: &str) -> Option<ColType> {
        Some(match s {
            "void" => ColType::Void,
            "oid" => ColType::Oid,
            "int" => ColType::Int,
            "lng" | "bigint" => ColType::Lng,
            "dbl" | "double" | "decimal" => ColType::Dbl,
            "str" | "varchar" | "char" | "clob" => ColType::Str,
            "bit" | "bool" | "boolean" => ColType::Bool,
            "date" => ColType::Date,
            _ => return None,
        })
    }

    /// Stable one-byte wire tag, shared by the disk format (`storage`)
    /// and the ring's catalog-synchronization messages.
    pub fn tag(self) -> u8 {
        match self {
            ColType::Void => 0,
            ColType::Oid => 1,
            ColType::Int => 2,
            ColType::Lng => 3,
            ColType::Dbl => 4,
            ColType::Str => 5,
            ColType::Bool => 6,
            ColType::Date => 7,
        }
    }

    /// Inverse of [`ColType::tag`]; `None` for unknown tags (corrupt or
    /// newer peers).
    pub fn from_tag(b: u8) -> Option<ColType> {
        Some(match b {
            0 => ColType::Void,
            1 => ColType::Oid,
            2 => ColType::Int,
            3 => ColType::Lng,
            4 => ColType::Dbl,
            5 => ColType::Str,
            6 => ColType::Bool,
            7 => ColType::Date,
            _ => return None,
        })
    }

    /// Fixed width in bytes of one element as stored (strings report the
    /// pointer-side cost; their bytes live in the heap).
    pub fn elem_width(self) -> usize {
        match self {
            ColType::Void => 0,
            ColType::Oid | ColType::Lng | ColType::Dbl => 8,
            ColType::Int | ColType::Date => 4,
            ColType::Str => 4, // offset entry
            ColType::Bool => 1,
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    Nil,
    Oid(u64),
    Int(i32),
    Lng(i64),
    Dbl(f64),
    Str(String),
    Bool(bool),
    /// Days since 1970-01-01 (proleptic).
    Date(i32),
}

impl Val {
    pub fn col_type(&self) -> Option<ColType> {
        Some(match self {
            Val::Nil => return None,
            Val::Oid(_) => ColType::Oid,
            Val::Int(_) => ColType::Int,
            Val::Lng(_) => ColType::Lng,
            Val::Dbl(_) => ColType::Dbl,
            Val::Str(_) => ColType::Str,
            Val::Bool(_) => ColType::Bool,
            Val::Date(_) => ColType::Date,
        })
    }

    pub fn is_nil(&self) -> bool {
        matches!(self, Val::Nil)
    }

    /// Numeric view for cross-type comparisons (int/lng/dbl/oid/date).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self {
            Val::Oid(v) => *v as f64,
            Val::Int(v) => *v as f64,
            Val::Lng(v) => *v as f64,
            Val::Dbl(v) => *v,
            Val::Date(v) => *v as f64,
            Val::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => return None,
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        Some(match self {
            Val::Oid(v) => *v as i64,
            Val::Int(v) => *v as i64,
            Val::Lng(v) => *v,
            Val::Date(v) => *v as i64,
            _ => return None,
        })
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total order with numeric coercion across numeric types; `Nil`
    /// sorts first (MonetDB convention); mismatched non-numeric types are
    /// incomparable (`None`).
    pub fn try_cmp(&self, other: &Val) -> Option<Ordering> {
        match (self, other) {
            (Val::Nil, Val::Nil) => Some(Ordering::Equal),
            (Val::Nil, _) => Some(Ordering::Less),
            (_, Val::Nil) => Some(Ordering::Greater),
            (Val::Str(a), Val::Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Val::Bool(a), Val::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Nil => write!(f, "nil"),
            Val::Oid(v) => write!(f, "{v}@0"),
            Val::Int(v) => write!(f, "{v}"),
            Val::Lng(v) => write!(f, "{v}"),
            Val::Dbl(v) => write!(f, "{v}"),
            Val::Str(s) => write!(f, "\"{s}\""),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i32> for Val {
    fn from(v: i32) -> Self {
        Val::Int(v)
    }
}
impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::Lng(v)
    }
}
impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::Dbl(v)
    }
}
impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::Str(v.to_string())
    }
}
impl From<String> for Val {
    fn from(v: String) -> Self {
        Val::Str(v)
    }
}
impl From<bool> for Val {
    fn from(v: bool) -> Self {
        Val::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_round_trip() {
        for t in [
            ColType::Void,
            ColType::Oid,
            ColType::Int,
            ColType::Lng,
            ColType::Dbl,
            ColType::Str,
            ColType::Bool,
            ColType::Date,
        ] {
            assert_eq!(ColType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(ColType::from_tag(99), None);
    }

    #[test]
    fn type_names_round_trip() {
        for t in [
            ColType::Void,
            ColType::Oid,
            ColType::Int,
            ColType::Lng,
            ColType::Dbl,
            ColType::Str,
            ColType::Bool,
            ColType::Date,
        ] {
            assert_eq!(ColType::from_name(t.name()), Some(t));
        }
        assert_eq!(ColType::from_name("varchar"), Some(ColType::Str));
        assert_eq!(ColType::from_name("nonsense"), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Val::Int(3).try_cmp(&Val::Lng(3)), Some(Ordering::Equal));
        assert_eq!(Val::Int(3).try_cmp(&Val::Dbl(3.5)), Some(Ordering::Less));
        assert_eq!(Val::Lng(10).try_cmp(&Val::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn nil_sorts_first() {
        assert_eq!(Val::Nil.try_cmp(&Val::Int(i32::MIN)), Some(Ordering::Less));
        assert_eq!(Val::Int(0).try_cmp(&Val::Nil), Some(Ordering::Greater));
        assert_eq!(Val::Nil.try_cmp(&Val::Nil), Some(Ordering::Equal));
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(Val::from("abc").try_cmp(&Val::from("abd")), Some(Ordering::Less));
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Val::from("x").try_cmp(&Val::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Oid(7).to_string(), "7@0");
        assert_eq!(Val::from("hi").to_string(), "\"hi\"");
        assert_eq!(Val::Nil.to_string(), "nil");
    }
}
