//! Typed columns. A column is a vector of one base type; `Void` is the
//! virtual dense OID sequence (`seq, seq+1, …`) that MonetDB uses for BAT
//! heads — it occupies no storage.

use crate::error::{BatError, Result};
use crate::heap::StrCol;
use crate::value::{ColType, Val};
use std::cmp::Ordering;

#[derive(Clone, Debug, PartialEq)]
pub enum Column {
    /// Dense OID sequence starting at `seq`, of length `len`.
    Void {
        seq: u64,
        len: usize,
    },
    Oid(Vec<u64>),
    Int(Vec<i32>),
    Lng(Vec<i64>),
    Dbl(Vec<f64>),
    Str(StrCol),
    Bool(Vec<bool>),
    /// Days since epoch.
    Date(Vec<i32>),
}

/// Borrowed key for hashing/equality across column types: numerics are
/// normalized to a bit pattern, strings borrow from the heap. Used by the
/// hash-join and group-by kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Key<'a> {
    Num(u64),
    Str(&'a str),
}

impl Column {
    pub fn len(&self) -> usize {
        match self {
            Column::Void { len, .. } => *len,
            Column::Oid(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Lng(v) => v.len(),
            Column::Dbl(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Date(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn col_type(&self) -> ColType {
        match self {
            Column::Void { .. } => ColType::Void,
            Column::Oid(_) => ColType::Oid,
            Column::Int(_) => ColType::Int,
            Column::Lng(_) => ColType::Lng,
            Column::Dbl(_) => ColType::Dbl,
            Column::Str(_) => ColType::Str,
            Column::Bool(_) => ColType::Bool,
            Column::Date(_) => ColType::Date,
        }
    }

    /// In-memory footprint of the values (what the ring protocols count).
    pub fn byte_size(&self) -> usize {
        match self {
            Column::Void { .. } => 0,
            Column::Oid(v) => v.len() * 8,
            Column::Int(v) => v.len() * 4,
            Column::Lng(v) => v.len() * 8,
            Column::Dbl(v) => v.len() * 8,
            Column::Str(v) => v.byte_size(),
            Column::Bool(v) => v.len(),
            Column::Date(v) => v.len() * 4,
        }
    }

    pub fn get(&self, i: usize) -> Val {
        match self {
            Column::Void { seq, len } => {
                debug_assert!(i < *len);
                Val::Oid(seq + i as u64)
            }
            Column::Oid(v) => Val::Oid(v[i]),
            Column::Int(v) => Val::Int(v[i]),
            Column::Lng(v) => Val::Lng(v[i]),
            Column::Dbl(v) => Val::Dbl(v[i]),
            Column::Str(v) => Val::Str(v.get(i).to_string()),
            Column::Bool(v) => Val::Bool(v[i]),
            Column::Date(v) => Val::Date(v[i]),
        }
    }

    /// Hashable key view of element `i` (no allocation).
    pub fn key(&self, i: usize) -> Key<'_> {
        match self {
            Column::Void { seq, .. } => Key::Num(seq + i as u64),
            Column::Oid(v) => Key::Num(v[i]),
            Column::Int(v) => Key::Num(v[i] as i64 as u64),
            Column::Lng(v) => Key::Num(v[i] as u64),
            Column::Dbl(v) => Key::Num(v[i].to_bits()),
            Column::Str(v) => Key::Str(v.get(i)),
            Column::Bool(v) => Key::Num(v[i] as u64),
            Column::Date(v) => Key::Num(v[i] as i64 as u64),
        }
    }

    /// Can `key()` values of the two columns be meaningfully equated?
    /// (Same normalization domain: exact numeric types must match, except
    /// Void/Oid which share a domain.)
    pub fn join_compatible(&self, other: &Column) -> bool {
        use ColType::*;
        let norm = |t: ColType| match t {
            Void => Oid,
            t => t,
        };
        norm(self.col_type()) == norm(other.col_type())
    }

    /// Compare elements `self[i]` vs `other[j]` with numeric coercion.
    pub fn cmp_elem(&self, i: usize, other: &Column, j: usize) -> Option<Ordering> {
        self.get(i).try_cmp(&other.get(j))
    }

    /// Compare element `i` against a constant.
    pub fn cmp_val(&self, i: usize, v: &Val) -> Option<Ordering> {
        self.get(i).try_cmp(v)
    }

    /// Materialize: `Void` becomes an explicit `Oid` vector; other columns
    /// are returned unchanged.
    pub fn materialize(self) -> Column {
        match self {
            Column::Void { seq, len } => Column::Oid((0..len as u64).map(|i| seq + i).collect()),
            other => other,
        }
    }

    /// Build a new column from the given indices of this one.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Void { seq, .. } => Column::Oid(idx.iter().map(|&i| seq + i as u64).collect()),
            Column::Oid(v) => Column::Oid(idx.iter().map(|&i| v[i]).collect()),
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Lng(v) => Column::Lng(idx.iter().map(|&i| v[i]).collect()),
            Column::Dbl(v) => Column::Dbl(idx.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(v.gather(idx)),
            Column::Bool(v) => Column::Bool(idx.iter().map(|&i| v[i]).collect()),
            Column::Date(v) => Column::Date(idx.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Contiguous sub-column `[lo, hi)`.
    pub fn slice(&self, lo: usize, hi: usize) -> Column {
        debug_assert!(lo <= hi && hi <= self.len());
        match self {
            Column::Void { seq, .. } => Column::Void { seq: seq + lo as u64, len: hi - lo },
            _ => self.gather(&(lo..hi).collect::<Vec<_>>()),
        }
    }

    /// Append a value of matching type; `Void` accepts only the next OID
    /// in sequence.
    pub fn push(&mut self, v: &Val) -> Result<()> {
        match (self, v) {
            (Column::Void { seq, len }, Val::Oid(o)) if *o == *seq + *len as u64 => {
                *len += 1;
                Ok(())
            }
            (Column::Oid(vec), Val::Oid(x)) => {
                vec.push(*x);
                Ok(())
            }
            (Column::Int(vec), Val::Int(x)) => {
                vec.push(*x);
                Ok(())
            }
            (Column::Lng(vec), Val::Lng(x)) => {
                vec.push(*x);
                Ok(())
            }
            (Column::Lng(vec), Val::Int(x)) => {
                vec.push(*x as i64);
                Ok(())
            }
            (Column::Dbl(vec), Val::Dbl(x)) => {
                vec.push(*x);
                Ok(())
            }
            (Column::Dbl(vec), Val::Int(x)) => {
                vec.push(*x as f64);
                Ok(())
            }
            (Column::Dbl(vec), Val::Lng(x)) => {
                vec.push(*x as f64);
                Ok(())
            }
            (Column::Str(col), Val::Str(s)) => {
                col.push(s);
                Ok(())
            }
            (Column::Bool(vec), Val::Bool(b)) => {
                vec.push(*b);
                Ok(())
            }
            (Column::Date(vec), Val::Date(d)) => {
                vec.push(*d);
                Ok(())
            }
            (me, v) => Err(BatError::TypeMismatch {
                expected: me.col_type().name(),
                got: format!("{v:?}"),
            }),
        }
    }

    /// Append every element of `other` (same or push-coercible type);
    /// the bulk form of [`Column::push`] used by SQL INSERT appends.
    pub fn try_extend(&mut self, other: &Column) -> Result<()> {
        match (&mut *self, other) {
            (Column::Void { len, .. }, Column::Void { len: n, .. }) => {
                *len += n;
                Ok(())
            }
            (Column::Oid(a), Column::Oid(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Int(a), Column::Int(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Lng(a), Column::Lng(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Dbl(a), Column::Dbl(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Str(a), Column::Str(b)) => {
                for s in b.iter() {
                    a.push(s);
                }
                Ok(())
            }
            (Column::Bool(a), Column::Bool(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            (Column::Date(a), Column::Date(b)) => {
                a.extend_from_slice(b);
                Ok(())
            }
            // Fall back to element-wise pushes for the push-coercible
            // pairs (Int→Lng, Int/Lng→Dbl).
            (me, other) => {
                for i in 0..other.len() {
                    me.push(&other.get(i))?;
                }
                Ok(())
            }
        }
    }

    /// Empty column of the given type.
    pub fn empty(ty: ColType) -> Column {
        match ty {
            ColType::Void => Column::Void { seq: 0, len: 0 },
            ColType::Oid => Column::Oid(Vec::new()),
            ColType::Int => Column::Int(Vec::new()),
            ColType::Lng => Column::Lng(Vec::new()),
            ColType::Dbl => Column::Dbl(Vec::new()),
            ColType::Str => Column::Str(StrCol::new()),
            ColType::Bool => Column::Bool(Vec::new()),
            ColType::Date => Column::Date(Vec::new()),
        }
    }

    /// Is the column sorted non-decreasingly?
    pub fn is_sorted(&self) -> bool {
        match self {
            Column::Void { .. } => true,
            Column::Oid(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Int(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Lng(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Dbl(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Str(v) => (1..v.len()).all(|i| v.get(i - 1) <= v.get(i)),
            Column::Bool(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Column::Date(v) => v.windows(2).all(|w| w[0] <= w[1]),
        }
    }

    /// Sort permutation of the column (stable): indices such that
    /// gathering with them yields a sorted column.
    pub fn sort_perm(&self, descending: bool) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        match self {
            Column::Void { .. } => {
                if descending {
                    idx.reverse();
                }
                return idx;
            }
            Column::Oid(v) => idx.sort_by_key(|&i| v[i]),
            Column::Int(v) => idx.sort_by_key(|&i| v[i]),
            Column::Lng(v) => idx.sort_by_key(|&i| v[i]),
            Column::Dbl(v) => {
                idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal))
            }
            Column::Str(v) => idx.sort_by(|&a, &b| v.get(a).cmp(v.get(b))),
            Column::Bool(v) => idx.sort_by_key(|&i| v[i]),
            Column::Date(v) => idx.sort_by_key(|&i| v[i]),
        }
        if descending {
            idx.reverse();
        }
        idx
    }

    /// Typed accessors for the hot kernels.
    pub fn as_oid(&self) -> Option<&[u64]> {
        match self {
            Column::Oid(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_int(&self) -> Option<&[i32]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_lng(&self) -> Option<&[i64]> {
        match self {
            Column::Lng(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_dbl(&self) -> Option<&[f64]> {
        match self {
            Column::Dbl(v) => Some(v),
            _ => None,
        }
    }
    pub fn as_str_col(&self) -> Option<&StrCol> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// OID value at position `i` when this column is a head (Void or Oid).
    pub fn oid_at(&self, i: usize) -> Option<u64> {
        match self {
            Column::Void { seq, len } if i < *len => Some(seq + i as u64),
            Column::Oid(v) => v.get(i).copied(),
            _ => None,
        }
    }

    pub fn iter_vals(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl From<Vec<i32>> for Column {
    fn from(v: Vec<i32>) -> Self {
        Column::Int(v)
    }
}
impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::Lng(v)
    }
}
impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::Dbl(v)
    }
}
impl From<Vec<u64>> for Column {
    fn from(v: Vec<u64>) -> Self {
        Column::Oid(v)
    }
}
impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Str(v.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_is_virtual() {
        let c = Column::Void { seq: 10, len: 5 };
        assert_eq!(c.len(), 5);
        assert_eq!(c.byte_size(), 0);
        assert_eq!(c.get(2), Val::Oid(12));
        assert_eq!(c.oid_at(4), Some(14));
        assert_eq!(c.oid_at(5), None);
    }

    #[test]
    fn try_extend_same_and_coerced_types() {
        let mut c = Column::from(vec![1, 2]);
        c.try_extend(&Column::from(vec![3])).unwrap();
        assert_eq!(c, Column::Int(vec![1, 2, 3]));

        let mut s = Column::from(vec!["a"]);
        s.try_extend(&Column::from(vec!["b", "c"])).unwrap();
        assert_eq!(s.get(2), Val::Str("c".into()));

        // Int extends Lng/Dbl via the push coercions.
        let mut l = Column::Lng(vec![1]);
        l.try_extend(&Column::from(vec![2, 3])).unwrap();
        assert_eq!(l, Column::Lng(vec![1, 2, 3]));

        let mut v = Column::Void { seq: 5, len: 2 };
        v.try_extend(&Column::Void { seq: 0, len: 3 }).unwrap();
        assert_eq!(v.len(), 5);

        // Incompatible types are rejected.
        let mut i = Column::from(vec![1]);
        assert!(i.try_extend(&Column::from(vec!["x"])).is_err());
    }

    #[test]
    fn materialize_void() {
        let c = Column::Void { seq: 3, len: 3 }.materialize();
        assert_eq!(c, Column::Oid(vec![3, 4, 5]));
    }

    #[test]
    fn gather_each_type() {
        let idx = [2usize, 0];
        assert_eq!(Column::from(vec![1, 2, 3]).gather(&idx), Column::Int(vec![3, 1]));
        assert_eq!(Column::from(vec!["a", "b", "c"]).gather(&idx), Column::from(vec!["c", "a"]));
        assert_eq!(Column::Void { seq: 5, len: 3 }.gather(&idx), Column::Oid(vec![7, 5]));
    }

    #[test]
    fn slice_void_stays_void() {
        let c = Column::Void { seq: 0, len: 10 }.slice(3, 7);
        assert_eq!(c, Column::Void { seq: 3, len: 4 });
    }

    #[test]
    fn keys_equate_within_domain() {
        let a = Column::from(vec![5i32, 6]);
        let b = Column::from(vec![5i32]);
        assert_eq!(a.key(0), b.key(0));
        assert_ne!(a.key(1), b.key(0));
        let v = Column::Void { seq: 5, len: 1 };
        let o = Column::from(vec![5u64]);
        assert_eq!(v.key(0), o.key(0));
        assert!(v.join_compatible(&o));
        assert!(!a.join_compatible(&o));
    }

    #[test]
    fn negative_int_keys_distinct() {
        let c = Column::from(vec![-1i32, 1]);
        assert_ne!(c.key(0), c.key(1));
        // And -1 as Int equals -1 as Lng domain-wise only via matching types
        let l = Column::from(vec![-1i64]);
        assert_eq!(c.key(0), l.key(0), "i32 widened to i64 bit pattern");
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::empty(ColType::Int);
        c.push(&Val::Int(1)).unwrap();
        assert!(c.push(&Val::Str("x".into())).is_err());
        let mut v = Column::Void { seq: 0, len: 0 };
        v.push(&Val::Oid(0)).unwrap();
        v.push(&Val::Oid(1)).unwrap();
        assert!(v.push(&Val::Oid(5)).is_err(), "void only extends densely");
    }

    #[test]
    fn sortedness_and_perm() {
        let c = Column::from(vec![3, 1, 2]);
        assert!(!c.is_sorted());
        let perm = c.sort_perm(false);
        assert_eq!(perm, vec![1, 2, 0]);
        assert!(c.gather(&perm).is_sorted());
        let desc = c.sort_perm(true);
        assert_eq!(c.gather(&desc), Column::Int(vec![3, 2, 1]));
    }

    #[test]
    fn sort_perm_stable() {
        let c = Column::from(vec![1, 0, 1, 0]);
        assert_eq!(c.sort_perm(false), vec![1, 3, 0, 2]);
    }

    #[test]
    fn string_sort() {
        let c = Column::from(vec!["pear", "apple", "fig"]);
        let perm = c.sort_perm(false);
        assert_eq!(c.gather(&perm), Column::from(vec!["apple", "fig", "pear"]));
    }
}
