//! Typed query results: the unit every layer above the kernel now
//! exchanges. A [`ResultSet`] carries named, typed columns (BATs) plus
//! the DDL/DML outcomes (`info` text, affected-row counts), so a result
//! crosses threads and sockets as columns and is rendered to text only
//! at the edge that actually needs text — once, not at every hop.
//!
//! Two binary forms exist, both reusing the BAT encoding of
//! [`crate::storage`] for column payloads. The TCP client protocol
//! *streams* a result as `ResultHeader` + `RowBatch` frames (see the
//! `dc-client` crate), so large results never materialize as one
//! buffer; the single-blob `DCR1` form below serializes a whole result
//! self-contained — for caching or persisting results and for codec
//! round-trip testing:
//! ```text
//! magic  "DCR1"
//! u8     flags (bit 0: affected present, bit 1: info present)
//! [u64   affected rows]
//! [u32   info length, info bytes]
//! u16    column count
//! per column:
//!   u16 len + bytes   table label
//!   u16 len + bytes   column name
//!   u16 len + bytes   declared SQL type
//!   BAT               column data (self-delimiting, storage format)
//! ```
//! Decoding follows the same hostile-length discipline as
//! [`crate::storage::read_bat`]: claimed lengths never turn into upfront
//! allocations — buffers grow only as bytes actually arrive.

use crate::bat::Bat;
use crate::error::{BatError, Result};
use crate::storage;
use crate::value::{ColType, Val};
use std::io::{Read, Write};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DCR1";
const FLAG_AFFECTED: u8 = 1;
const FLAG_INFO: u8 = 2;

/// Cap on any single up-front allocation while decoding (bytes).
const MAX_PREALLOC: usize = 64 * 1024;

/// One named, typed output column. `sql_type` is the *declared* type
/// label the SQL layer advertises (`lng` for COUNT, etc.); the physical
/// type is [`ResultColumn::col_type`], taken from the data itself.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultColumn {
    /// Table label as the front-end prints it (e.g. `sys.c`).
    pub table: String,
    pub name: String,
    pub sql_type: String,
    pub data: Arc<Bat>,
}

impl ResultColumn {
    /// Physical type of the column values.
    pub fn col_type(&self) -> ColType {
        self.data.tail_type()
    }
}

/// A typed query result: zero or more columns, an optional affected-row
/// count (INSERT), and optional info text (DDL acknowledgements, ad-hoc
/// plan output). [`ResultSet::render`] produces the MonetDB-style text
/// the string API used to return, making strings a view of this type
/// rather than the other way around.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<ResultColumn>,
    /// `Some(n)` after DML: rendered as `n rows affected`.
    pub affected: Option<u64>,
    /// Free-form text rendered verbatim ahead of everything else.
    pub info: Option<String>,
}

impl ResultSet {
    pub fn new() -> ResultSet {
        ResultSet::default()
    }

    /// A result carrying only info text (DDL acknowledgements).
    pub fn with_info(text: impl Into<String>) -> ResultSet {
        ResultSet { info: Some(text.into()), ..ResultSet::default() }
    }

    /// A result carrying only an affected-row count (DML).
    pub fn with_affected(n: u64) -> ResultSet {
        ResultSet { affected: Some(n), ..ResultSet::default() }
    }

    pub fn push_column(
        &mut self,
        table: impl Into<String>,
        name: impl Into<String>,
        sql_type: impl Into<String>,
        data: Arc<Bat>,
    ) {
        self.columns.push(ResultColumn {
            table: table.into(),
            name: name.into(),
            sql_type: sql_type.into(),
            data,
        });
    }

    /// Prepend free-form text (captured `io.print` output) to the info.
    pub fn prepend_text(&mut self, text: &str) {
        if text.is_empty() {
            return;
        }
        self.info = Some(match self.info.take() {
            Some(rest) => format!("{text}{rest}"),
            None => text.to_string(),
        });
    }

    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    pub fn row_count(&self) -> usize {
        self.columns.first().map(|c| c.data.count()).unwrap_or(0)
    }

    /// True when there is nothing to report at all.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty() && self.affected.is_none() && self.info.is_none()
    }

    /// Cell value (row-major access for rendering and tests).
    pub fn cell(&self, row: usize, col: usize) -> Val {
        self.columns[col].data.tail().get(row)
    }

    /// Render in MonetDB's tabular client format; DDL/DML results render
    /// their info/affected lines. This is the one place result text is
    /// produced.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        if let Some(info) = &self.info {
            s.push_str(info);
        }
        if let Some(n) = self.affected {
            let _ = writeln!(s, "{n} rows affected");
        }
        if !self.columns.is_empty() {
            let headers: Vec<String> =
                self.columns.iter().map(|c| format!("{}.{}", c.table, c.name)).collect();
            let _ = writeln!(s, "% {}", headers.join(",\t"));
            let types: Vec<&str> = self.columns.iter().map(|c| c.sql_type.as_str()).collect();
            let _ = writeln!(s, "% {}", types.join(",\t"));
            for r in 0..self.row_count() {
                let cells: Vec<String> =
                    self.columns.iter().map(|c| c.data.tail().get(r).to_string()).collect();
                let _ = writeln!(s, "[ {} ]", cells.join(",\t"));
            }
        }
        s
    }

    /// Serialize to any writer (see the module docs for the layout).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(MAGIC)?;
        let mut flags = 0u8;
        if self.affected.is_some() {
            flags |= FLAG_AFFECTED;
        }
        if self.info.is_some() {
            flags |= FLAG_INFO;
        }
        w.write_all(&[flags])?;
        if let Some(n) = self.affected {
            w.write_all(&n.to_le_bytes())?;
        }
        if let Some(info) = &self.info {
            write_text(w, info)?;
        }
        let ncols = u16::try_from(self.columns.len())
            .map_err(|_| BatError::Invalid(format!("{} columns", self.columns.len())))?;
        w.write_all(&ncols.to_le_bytes())?;
        for c in &self.columns {
            write_label(w, &c.table)?;
            write_label(w, &c.name)?;
            write_label(w, &c.sql_type)?;
            storage::write_bat(w, &c.data)?;
        }
        Ok(())
    }

    /// Deserialize from any reader; rejects corrupt or foreign input.
    pub fn read_from(r: &mut impl Read) -> Result<ResultSet> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(BatError::Corrupt("bad result-set magic".into()));
        }
        let mut flags = [0u8; 1];
        r.read_exact(&mut flags)?;
        if flags[0] & !(FLAG_AFFECTED | FLAG_INFO) != 0 {
            return Err(BatError::Corrupt(format!("unknown result-set flags {:#x}", flags[0])));
        }
        let mut rs = ResultSet::new();
        if flags[0] & FLAG_AFFECTED != 0 {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            rs.affected = Some(u64::from_le_bytes(b));
        }
        if flags[0] & FLAG_INFO != 0 {
            rs.info = Some(read_text(r)?);
        }
        let mut b = [0u8; 2];
        r.read_exact(&mut b)?;
        let ncols = u16::from_le_bytes(b) as usize;
        for _ in 0..ncols {
            let table = read_label(r)?;
            let name = read_label(r)?;
            let sql_type = read_label(r)?;
            let data = Arc::new(storage::read_bat(r)?);
            rs.columns.push(ResultColumn { table, name, sql_type, data });
        }
        Ok(rs)
    }

    /// The self-contained single-blob form (`DCR1`). The TCP client
    /// protocol streams results as frames instead; use this to cache or
    /// persist a whole result.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec<u8> writes are infallible");
        out
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<ResultSet> {
        ResultSet::read_from(&mut std::io::Cursor::new(bytes))
    }
}

fn write_label(w: &mut impl Write, s: &str) -> Result<()> {
    let len = u16::try_from(s.len())
        .map_err(|_| BatError::Invalid(format!("label of {} bytes", s.len())))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_label(r: &mut impl Read) -> Result<String> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    read_utf8(r, u16::from_le_bytes(b) as u64)
}

fn write_text(w: &mut impl Write, s: &str) -> Result<()> {
    let len = u32::try_from(s.len())
        .map_err(|_| BatError::Invalid(format!("info of {} bytes", s.len())))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

fn read_text(r: &mut impl Read) -> Result<String> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    read_utf8(r, u32::from_le_bytes(b) as u64)
}

/// Read exactly `len` UTF-8 bytes, growing toward the claimed length
/// only as bytes arrive (a lying prefix hits EOF, not an allocation).
fn read_utf8(r: &mut impl Read, len: u64) -> Result<String> {
    let mut bytes = Vec::with_capacity((len as usize).min(MAX_PREALLOC));
    r.take(len).read_to_end(&mut bytes)?;
    if (bytes.len() as u64) < len {
        return Err(BatError::Corrupt(format!(
            "truncated string: want {len} bytes, got {}",
            bytes.len()
        )));
    }
    String::from_utf8(bytes).map_err(|e| BatError::Corrupt(format!("bad utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> ResultSet {
        let mut rs = ResultSet::new();
        rs.push_column("sys.c", "t_id", "int", Arc::new(Bat::dense(Column::from(vec![2, 2, 3]))));
        rs.push_column(
            "sys.c",
            "name",
            "str",
            Arc::new(Bat::dense(Column::from(vec!["a", "", "wörld"]))),
        );
        rs
    }

    #[test]
    fn render_monetdb_style() {
        let out = sample().render();
        assert!(out.starts_with("% sys.c.t_id,\tsys.c.name\n"), "{out}");
        assert!(out.contains("% int,\tstr"), "{out}");
        assert!(out.contains("[ 2,\t\"a\" ]"), "{out}");
        assert!(out.contains("[ 3,\t\"wörld\" ]"), "{out}");
    }

    #[test]
    fn info_and_affected_render() {
        assert_eq!(ResultSet::with_info("table sys.t created\n").render(), "table sys.t created\n");
        assert_eq!(ResultSet::with_affected(2).render(), "2 rows affected\n");
        let mut rs = ResultSet::with_affected(1);
        rs.prepend_text("note\n");
        assert_eq!(rs.render(), "note\n1 rows affected\n");
    }

    #[test]
    fn wire_round_trip() {
        for rs in [
            ResultSet::new(),
            ResultSet::with_info("hello\n"),
            ResultSet::with_affected(42),
            sample(),
            {
                let mut rs = sample();
                rs.affected = Some(7);
                rs.info = Some("mixed".into());
                rs
            },
        ] {
            let back = ResultSet::from_bytes(&rs.to_bytes()).unwrap();
            assert_eq!(back, rs);
        }
    }

    #[test]
    fn cell_and_shape_accessors() {
        let rs = sample();
        assert_eq!((rs.column_count(), rs.row_count()), (2, 3));
        assert_eq!(rs.cell(2, 0), Val::Int(3));
        assert_eq!(rs.columns[1].col_type(), ColType::Str);
        assert!(!rs.is_empty());
        assert!(ResultSet::new().is_empty());
    }

    #[test]
    fn corrupt_input_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(ResultSet::from_bytes(&bytes), Err(BatError::Corrupt(_))));
        let bytes = sample().to_bytes();
        assert!(ResultSet::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn hostile_info_length_errors_without_allocating() {
        // flags say "info present" and claim u32::MAX bytes over nothing.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(FLAG_INFO);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(ResultSet::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let mut bytes = ResultSet::new().to_bytes();
        bytes[4] = 0x80;
        assert!(ResultSet::from_bytes(&bytes).is_err());
    }
}
