//! The Binary Association Table: a two-column table mapping head values
//! (usually dense OIDs) to tail values. All relational operators consume
//! and produce BATs (see [`crate::ops`]).

use crate::column::Column;
use crate::error::{BatError, Result};
use crate::value::{ColType, Val};

/// Lightweight properties, used to steer algorithm selection (the paper
/// §3.1: "Additional BAT properties are used to steer selection of more
/// efficient algorithms, e.g., sorted columns lead to sort-merge join").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Props {
    /// Tail is non-decreasing.
    pub tail_sorted: bool,
    /// Head values are unique.
    pub head_key: bool,
    /// Tail contains no nil values (always true in this kernel: nils are
    /// not representable inside typed vectors; kept for catalog fidelity).
    pub no_nil: bool,
}

#[derive(Clone, Debug, PartialEq)]
pub struct Bat {
    head: Column,
    tail: Column,
    props: Props,
}

impl Bat {
    /// Create from explicit head and tail columns of equal length.
    pub fn new(head: Column, tail: Column) -> Result<Bat> {
        if head.len() != tail.len() {
            return Err(BatError::LengthMismatch { left: head.len(), right: tail.len() });
        }
        let props = Props {
            tail_sorted: tail.is_sorted(),
            head_key: matches!(head, Column::Void { .. }),
            no_nil: true,
        };
        Ok(Bat { head, tail, props })
    }

    /// The common case: dense head `0@0, 1@0, …` over a tail column.
    pub fn dense(tail: Column) -> Bat {
        let len = tail.len();
        let props = Props { tail_sorted: tail.is_sorted(), head_key: true, no_nil: true };
        Bat { head: Column::Void { seq: 0, len }, tail, props }
    }

    /// Dense head starting at `seq`.
    pub fn dense_from(seq: u64, tail: Column) -> Bat {
        let len = tail.len();
        let props = Props { tail_sorted: tail.is_sorted(), head_key: true, no_nil: true };
        Bat { head: Column::Void { seq, len }, tail, props }
    }

    /// Empty BAT with a void head and a typed tail.
    pub fn empty(tail_type: ColType) -> Bat {
        Bat::dense(Column::empty(tail_type))
    }

    pub fn head(&self) -> &Column {
        &self.head
    }

    pub fn tail(&self) -> &Column {
        &self.tail
    }

    pub fn props(&self) -> Props {
        self.props
    }

    pub fn count(&self) -> usize {
        self.head.len()
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn head_type(&self) -> ColType {
        self.head.col_type()
    }

    pub fn tail_type(&self) -> ColType {
        self.tail.col_type()
    }

    /// In-memory footprint in bytes (head + tail). This is the size the
    /// ring protocols account against queue capacity.
    pub fn byte_size(&self) -> usize {
        self.head.byte_size() + self.tail.byte_size()
    }

    /// BUN (head, tail) pair at position `i` as scalars.
    pub fn bun(&self, i: usize) -> (Val, Val) {
        (self.head.get(i), self.tail.get(i))
    }

    /// Decompose into columns (consumes).
    pub fn into_parts(self) -> (Column, Column) {
        (self.head, self.tail)
    }

    /// Construct with explicitly claimed properties (used by operators
    /// that guarantee them structurally, avoiding O(n) re-checks).
    pub fn with_props(head: Column, tail: Column, props: Props) -> Result<Bat> {
        if head.len() != tail.len() {
            return Err(BatError::LengthMismatch { left: head.len(), right: tail.len() });
        }
        Ok(Bat { head, tail, props })
    }

    /// Append a BUN; keeps properties conservative (clears claims that may
    /// no longer hold rather than re-scanning).
    pub fn append(&mut self, head: Val, tail: Val) -> Result<()> {
        self.head.push(&head)?;
        self.tail.push(&tail)?;
        self.props.tail_sorted = false;
        self.props.head_key = matches!(self.head, Column::Void { .. });
        Ok(())
    }

    /// A new BAT with `vals` appended to the tail, the void head grown to
    /// match. Only dense (void-head) BATs — i.e. persistent column BATs —
    /// support this; it is the storage primitive behind SQL INSERT.
    pub fn extend_tail(&self, vals: &Column) -> Result<Bat> {
        let Column::Void { seq, .. } = self.head else {
            return Err(BatError::Invalid(format!(
                "extend_tail needs a dense (void-head) BAT, got {} head",
                self.head_type()
            )));
        };
        let mut tail = self.tail.clone();
        tail.try_extend(vals)?;
        Ok(Bat::dense_from(seq, tail))
    }

    /// Gather rows by position into a new BAT.
    pub fn gather(&self, idx: &[usize]) -> Bat {
        let head = self.head.gather(idx);
        let tail = self.tail.gather(idx);
        let props = Props { tail_sorted: tail.is_sorted(), head_key: false, no_nil: true };
        Bat { head, tail, props }
    }

    /// Contiguous row range `[lo, hi)` — MAL's `algebra.slice`.
    pub fn slice(&self, lo: usize, hi: usize) -> Bat {
        let hi = hi.min(self.count());
        let lo = lo.min(hi);
        let head = self.head.slice(lo, hi);
        let tail = self.tail.slice(lo, hi);
        let props = Props {
            tail_sorted: self.props.tail_sorted,
            head_key: self.props.head_key,
            no_nil: true,
        };
        Bat { head, tail, props }
    }

    /// Render the first `limit` BUNs, MonetDB `io.print` style; used by
    /// examples and debugging.
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "# BAT {}→{} [{} BUNs, {} bytes]",
            self.head_type(),
            self.tail_type(),
            self.count(),
            self.byte_size()
        );
        for i in 0..self.count().min(limit) {
            let (h, t) = self.bun(i);
            let _ = writeln!(s, "[ {h}, {t} ]");
        }
        if self.count() > limit {
            let _ = writeln!(s, "… {} more", self.count() - limit);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_construction() {
        let b = Bat::dense(Column::from(vec![10, 20, 30]));
        assert_eq!(b.count(), 3);
        assert_eq!(b.bun(1), (Val::Oid(1), Val::Int(20)));
        assert!(b.props().head_key);
        assert!(b.props().tail_sorted);
        assert_eq!(b.byte_size(), 12);
    }

    #[test]
    fn extend_tail_grows_dense_bats() {
        let b = Bat::dense_from(10, Column::from(vec![1, 2]));
        let grown = b.extend_tail(&Column::from(vec![3])).unwrap();
        assert_eq!(grown.count(), 3);
        assert_eq!(grown.bun(2), (Val::Oid(12), Val::Int(3)));
        assert_eq!(b.count(), 2, "original untouched");
        // Type mismatch and non-dense heads are rejected.
        assert!(b.extend_tail(&Column::from(vec!["x"])).is_err());
        let keyed = Bat::new(Column::from(vec![1u64, 2]), Column::from(vec![1, 2])).unwrap();
        assert!(keyed.extend_tail(&Column::from(vec![3])).is_err());
    }

    #[test]
    fn new_checks_lengths() {
        let r = Bat::new(Column::from(vec![1u64, 2]), Column::from(vec![1i32]));
        assert!(matches!(r, Err(BatError::LengthMismatch { .. })));
    }

    #[test]
    fn append_and_props() {
        let mut b = Bat::empty(ColType::Int);
        b.append(Val::Oid(0), Val::Int(5)).unwrap();
        b.append(Val::Oid(1), Val::Int(3)).unwrap();
        assert_eq!(b.count(), 2);
        assert!(b.props().head_key, "void head stays key");
        assert!(b.append(Val::Oid(7), Val::Int(1)).is_err(), "void head must stay dense");
    }

    #[test]
    fn slice_clamps() {
        let b = Bat::dense(Column::from(vec![1, 2, 3, 4]));
        let s = b.slice(1, 3);
        assert_eq!(s.count(), 2);
        assert_eq!(s.bun(0), (Val::Oid(1), Val::Int(2)));
        assert_eq!(b.slice(10, 20).count(), 0);
    }

    #[test]
    fn gather_rows() {
        let b = Bat::dense(Column::from(vec!["a", "b", "c"]));
        let g = b.gather(&[2, 0]);
        assert_eq!(g.bun(0), (Val::Oid(2), Val::Str("c".into())));
        assert_eq!(g.bun(1), (Val::Oid(0), Val::Str("a".into())));
    }

    #[test]
    fn render_contains_header() {
        let b = Bat::dense(Column::from(vec![1]));
        let r = b.render(10);
        assert!(r.contains("void→int"), "{r}");
        assert!(r.contains("[ 0@0, 1 ]"), "{r}");
    }
}
