//! Binary persistence for BATs: the "cold data on attached disks" that
//! the Data Cyclotron's per-node data loader pulls from when a BAT is
//! (re-)loaded into the ring (paper §4.2.1, outcome 4 of Fig. 3).
//!
//! Format (little-endian, version 1):
//! ```text
//! magic   "DCB1"
//! u8      head type tag | u8 tail type tag
//! u64     row count
//! head column payload, tail column payload
//! ```
//! Column payloads: `Void` stores only the seq; fixed-width types store
//! the raw vector; `Str` stores offsets then bytes.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::heap::StrCol;
use crate::value::ColType;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DCB1";

fn type_tag(t: ColType) -> u8 {
    t.tag()
}

fn tag_type(b: u8) -> Result<ColType> {
    ColType::from_tag(b).ok_or_else(|| BatError::Corrupt(format!("unknown type tag {b}")))
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_column(w: &mut impl Write, c: &Column) -> Result<()> {
    match c {
        Column::Void { seq, .. } => write_u64(w, *seq)?,
        Column::Oid(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Column::Int(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Column::Lng(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Column::Dbl(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Column::Str(s) => {
            let (offs, bytes) = s.raw_parts();
            write_u64(w, offs.len() as u64)?;
            for o in offs {
                w.write_all(&o.to_le_bytes())?;
            }
            write_u64(w, bytes.len() as u64)?;
            w.write_all(bytes)?;
        }
        Column::Bool(v) => {
            for &x in v {
                w.write_all(&[x as u8])?;
            }
        }
        Column::Date(v) => {
            for x in v {
                w.write_all(&x.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Cap on any single up-front allocation while decoding (in elements or
/// bytes). Counts in the input are untrusted: a corrupt or hostile
/// header may claim `u64::MAX` rows, so buffers only ever *grow toward*
/// the claimed count as bytes actually arrive — a lie hits EOF after at
/// most one bounded chunk, the same discipline as the TCP layer's
/// `read_frame_capped`.
const MAX_PREALLOC: usize = 64 * 1024;

fn read_column(r: &mut impl Read, ty: ColType, len: usize) -> Result<Column> {
    fn read_vec<const W: usize, T>(
        r: &mut impl Read,
        len: usize,
        decode: impl Fn([u8; W]) -> T,
    ) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(len.min(MAX_PREALLOC));
        let mut buf = [0u8; W];
        for _ in 0..len {
            r.read_exact(&mut buf)?;
            out.push(decode(buf));
        }
        Ok(out)
    }
    Ok(match ty {
        ColType::Void => Column::Void { seq: read_u64(r)?, len },
        ColType::Oid => Column::Oid(read_vec(r, len, u64::from_le_bytes)?),
        ColType::Int => Column::Int(read_vec(r, len, i32::from_le_bytes)?),
        ColType::Lng => Column::Lng(read_vec(r, len, i64::from_le_bytes)?),
        ColType::Dbl => Column::Dbl(read_vec(r, len, f64::from_le_bytes)?),
        ColType::Str => {
            let noffs = read_u64(r)? as usize;
            if Some(noffs) != len.checked_add(1) {
                return Err(BatError::Corrupt(format!(
                    "str offsets {noffs} disagree with row count {len}"
                )));
            }
            let offs = read_vec(r, noffs, u32::from_le_bytes)?;
            let nbytes = read_u64(r)?;
            // Grow-as-bytes-arrive: a truncated file errors out without
            // ever allocating the claimed size.
            let mut bytes = Vec::with_capacity((nbytes as usize).min(MAX_PREALLOC));
            r.take(nbytes).read_to_end(&mut bytes)?;
            if (bytes.len() as u64) < nbytes {
                return Err(BatError::Corrupt(format!(
                    "truncated string heap: want {nbytes} bytes, got {}",
                    bytes.len()
                )));
            }
            Column::Str(StrCol::from_raw_parts(offs, bytes).map_err(BatError::Corrupt)?)
        }
        ColType::Bool => Column::Bool(read_vec(r, len, |b: [u8; 1]| b[0] != 0)?),
        ColType::Date => Column::Date(read_vec(r, len, i32::from_le_bytes)?),
    })
}

/// Serialize a BAT to any writer.
pub fn write_bat(w: &mut impl Write, bat: &Bat) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[type_tag(bat.head_type()), type_tag(bat.tail_type())])?;
    write_u64(w, bat.count() as u64)?;
    write_column(w, bat.head())?;
    write_column(w, bat.tail())?;
    Ok(())
}

/// Deserialize a BAT from any reader.
pub fn read_bat(r: &mut impl Read) -> Result<Bat> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BatError::Corrupt("bad magic".into()));
    }
    let mut tags = [0u8; 2];
    r.read_exact(&mut tags)?;
    let (ht, tt) = (tag_type(tags[0])?, tag_type(tags[1])?);
    let len = read_u64(r)? as usize;
    let head = read_column(r, ht, len)?;
    let tail = read_column(r, tt, len)?;
    Bat::new(head, tail)
}

/// Save to a file crash-safely: write to a temp file in the same
/// directory, fsync it, then atomically rename into place (plus a
/// best-effort directory sync). A crash mid-checkpoint leaves either the
/// previous complete snapshot or none — never a torn one.
pub fn save_bat(path: &Path, bat: &Bat) -> Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("bat");
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        write_bat(&mut w, bat)?;
        w.flush()?;
        w.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Load from a file (buffered).
pub fn load_bat(path: &Path) -> Result<Bat> {
    let mut r = BufReader::new(File::open(path)?);
    read_bat(&mut r)
}

/// In-memory round-trip used by the ring transports to ship BAT payloads.
pub fn bat_to_bytes(bat: &Bat) -> Vec<u8> {
    let mut out = Vec::with_capacity(bat.byte_size() + 32);
    write_bat(&mut out, bat).expect("Vec<u8> writes are infallible");
    out
}

pub fn bat_from_bytes(bytes: &[u8]) -> Result<Bat> {
    read_bat(&mut std::io::Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn samples() -> Vec<Bat> {
        vec![
            Bat::dense(Column::from(vec![1, 2, 3])),
            Bat::dense(Column::from(vec![1i64 << 40, -5])),
            Bat::dense(Column::from(vec![1.5, -2.25])),
            Bat::dense(Column::from(vec!["hello", "", "wörld"])),
            Bat::new(Column::Oid(vec![5, 9]), Column::Bool(vec![true, false])).unwrap(),
            Bat::new(Column::from(vec![7i32]), Column::Date(vec![19000])).unwrap(),
            Bat::empty(ColType::Int),
            Bat::dense_from(100, Column::from(vec![42])),
        ]
    }

    #[test]
    fn bytes_round_trip_all_types() {
        for b in samples() {
            let bytes = bat_to_bytes(&b);
            let back = bat_from_bytes(&bytes).unwrap();
            assert_eq!(back.count(), b.count());
            for i in 0..b.count() {
                assert_eq!(back.bun(i), b.bun(i));
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("batstore_test_file_rt");
        let path = dir.join("x.bat");
        let b = Bat::dense(Column::from(vec!["persist", "me"]));
        save_bat(&path, &b).unwrap();
        let back = load_bat(&path).unwrap();
        assert_eq!(back.bun(1).1, Val::Str("me".into()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = bat_to_bytes(&Bat::dense(Column::from(vec![1])));
        bytes[0] = b'X';
        assert!(matches!(bat_from_bytes(&bytes), Err(BatError::Corrupt(_))));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = bat_to_bytes(&Bat::dense(Column::from(vec![1, 2, 3])));
        assert!(bat_from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = bat_to_bytes(&Bat::dense(Column::from(vec![1])));
        bytes[5] = 99;
        assert!(bat_from_bytes(&bytes).is_err());
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let dir = std::env::temp_dir().join(format!("batstore_atomic_{}", std::process::id()));
        let path = dir.join("x.bat");
        save_bat(&path, &Bat::dense(Column::from(vec![1, 2]))).unwrap();
        save_bat(&path, &Bat::dense(Column::from(vec![3, 4, 5]))).unwrap();
        assert_eq!(load_bat(&path).unwrap().count(), 3, "second save replaced the first");
        assert!(!dir.join(".x.bat.tmp").exists(), "temp renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absurd_row_count_errors_without_allocating() {
        // Header claims u64::MAX rows of ints over a 4-byte body: the
        // reader must fail on EOF, not attempt the allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(ColType::Void.tag());
        bytes.push(ColType::Int.tag());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(bat_from_bytes(&bytes).is_err());
    }

    #[test]
    fn absurd_string_heap_errors_without_allocating() {
        let mut bytes = bat_to_bytes(&Bat::dense(Column::from(vec!["a", "b"])));
        // The string-heap byte count sits 8 bytes from the end ("ab").
        let pos = bytes.len() - 10;
        bytes[pos..pos + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = bat_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated string heap"), "{err}");
    }

    #[test]
    fn str_offset_count_overflow_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(ColType::Void.tag());
        bytes.push(ColType::Str.tag());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // row count: len + 1 overflows
        bytes.extend_from_slice(&0u64.to_le_bytes()); // void head seq
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // claimed noffs
        assert!(matches!(bat_from_bytes(&bytes), Err(BatError::Corrupt(_))));
    }

    #[test]
    fn void_head_stays_virtual() {
        let b = Bat::dense_from(7, Column::from(vec![1, 2]));
        let back = bat_from_bytes(&bat_to_bytes(&b)).unwrap();
        assert_eq!(back.head_type(), ColType::Void);
        assert_eq!(back.bun(0).0, Val::Oid(7));
    }
}
