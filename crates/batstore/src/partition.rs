//! Horizontal partitioning: splitting a logical column into fragment BATs
//! that individually "easily fit in main memory of the individual nodes"
//! (paper §4). Fragments keep head OIDs from the parent, so recombining
//! or joining across fragments stays positionally correct.

use crate::bat::Bat;
use crate::error::{BatError, Result};

/// A partitioning of one logical BAT into row-range fragments.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// Row ranges `[start, end)` per fragment.
    pub ranges: Vec<(usize, usize)>,
}

/// Split into fragments of at most `max_bytes` each (at least one row per
/// fragment). Returns the fragments and the partitioning descriptor.
pub fn partition_by_bytes(bat: &Bat, max_bytes: usize) -> Result<(Vec<Bat>, Partitioning)> {
    if max_bytes == 0 {
        return Err(BatError::Invalid("max_bytes must be positive".into()));
    }
    let n = bat.count();
    if n == 0 {
        return Ok((vec![bat.clone()], Partitioning { ranges: vec![(0, 0)] }));
    }
    let total = bat.byte_size().max(1);
    let per_row = (total as f64 / n as f64).max(1.0);
    let rows_per_frag = ((max_bytes as f64 / per_row).floor() as usize).max(1);
    partition_by_rows(bat, rows_per_frag)
}

/// Split into fragments of at most `rows_per_frag` rows each.
pub fn partition_by_rows(bat: &Bat, rows_per_frag: usize) -> Result<(Vec<Bat>, Partitioning)> {
    if rows_per_frag == 0 {
        return Err(BatError::Invalid("rows_per_frag must be positive".into()));
    }
    let n = bat.count();
    let mut frags = Vec::new();
    let mut ranges = Vec::new();
    let mut lo = 0;
    while lo < n {
        let hi = (lo + rows_per_frag).min(n);
        frags.push(bat.slice(lo, hi));
        ranges.push((lo, hi));
        lo = hi;
    }
    if frags.is_empty() {
        frags.push(bat.clone());
        ranges.push((0, 0));
    }
    Ok((frags, Partitioning { ranges }))
}

/// Reassemble fragments (inverse of partitioning); fragments must be in
/// order and contiguous.
pub fn reassemble(frags: &[Bat]) -> Result<Bat> {
    let first = frags.first().ok_or_else(|| BatError::Invalid("no fragments".into()))?;
    let mut head = first.head().clone().materialize();
    let mut tail = first.tail().clone();
    for f in &frags[1..] {
        for i in 0..f.count() {
            let (h, t) = f.bun(i);
            head.push(&h)?;
            tail.push(&t)?;
        }
    }
    Bat::new(head, tail)
}

/// Canonical fragment name `table.column#k`, the identity under which a
/// fragment circulates in the ring.
pub fn fragment_name(table: &str, column: &str, k: usize) -> String {
    format!("{table}.{column}#{k}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Val;

    fn big() -> Bat {
        Bat::dense(Column::Int((0..100).collect()))
    }

    #[test]
    fn partition_by_rows_covers_all() {
        let (frags, parts) = partition_by_rows(&big(), 30).unwrap();
        assert_eq!(frags.len(), 4);
        assert_eq!(parts.ranges, vec![(0, 30), (30, 60), (60, 90), (90, 100)]);
        let total: usize = frags.iter().map(|f| f.count()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn fragments_preserve_oids() {
        let (frags, _) = partition_by_rows(&big(), 40).unwrap();
        // Second fragment starts at parent row 40 → head OID 40.
        assert_eq!(frags[1].bun(0), (Val::Oid(40), Val::Int(40)));
    }

    #[test]
    fn partition_by_bytes_respects_budget() {
        let b = big(); // 400 bytes of int tail
        let (frags, _) = partition_by_bytes(&b, 100).unwrap();
        assert!(frags.len() >= 4);
        for f in &frags {
            assert!(f.byte_size() <= 100, "fragment too big: {}", f.byte_size());
        }
    }

    #[test]
    fn reassemble_inverts() {
        let b = big();
        let (frags, _) = partition_by_rows(&b, 7).unwrap();
        let back = reassemble(&frags).unwrap();
        assert_eq!(back.count(), b.count());
        for i in (0..b.count()).step_by(13) {
            assert_eq!(back.bun(i), b.bun(i));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Bat::empty(crate::value::ColType::Int);
        let (frags, _) = partition_by_bytes(&empty, 10).unwrap();
        assert_eq!(frags.len(), 1);
        assert!(partition_by_rows(&big(), 0).is_err());
        assert!(partition_by_bytes(&big(), 0).is_err());
    }

    #[test]
    fn fragment_names() {
        assert_eq!(fragment_name("lineitem", "l_orderkey", 3), "lineitem.l_orderkey#3");
    }
}
