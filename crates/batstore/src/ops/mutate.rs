//! Selective-mutation kernels — the storage primitives behind SQL
//! `UPDATE` and `DELETE` (the paper's §6.4 "space for updates": the
//! fragment owner rewrites its authoritative copy and bumps the
//! version; stale copies keep circulating for readers that accept
//! them).
//!
//! The predicate language ([`RowPredicate`]) mirrors the SQL subset's
//! single-table WHERE conjuncts. Predicates travel to the fragment
//! owner *logically* and are evaluated there against the authoritative
//! payload — never as pre-computed row ids, which would be stale the
//! moment a concurrent mutation shifted the rows.

use crate::bat::Bat;
use crate::column::Column;
use crate::error::{BatError, Result};
use crate::ops::CmpOp;
use crate::value::Val;
use std::sync::Arc;

/// One WHERE conjunct as it travels to the fragment owner.
#[derive(Clone, Debug, PartialEq)]
pub enum RowPredicate {
    /// `column op literal`.
    Cmp { column: String, op: CmpOp, value: Val },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between { column: String, lo: Val, hi: Val },
    /// `column IN (v1, v2, …)`.
    InList { column: String, values: Vec<Val> },
}

impl RowPredicate {
    /// The column the predicate filters on.
    pub fn column(&self) -> &str {
        match self {
            RowPredicate::Cmp { column, .. }
            | RowPredicate::Between { column, .. }
            | RowPredicate::InList { column, .. } => column,
        }
    }
}

fn incomparable(col: &Column, v: &Val) -> BatError {
    BatError::TypeMismatch { expected: col.col_type().name(), got: format!("{v:?}") }
}

/// Validate that `v` is comparable against the column (checked on the
/// first row; a mismatched literal must fail loudly, not select nothing).
fn check_comparable(col: &Column, v: &Val) -> Result<()> {
    if !col.is_empty() && col.cmp_val(0, v).is_none() {
        return Err(incomparable(col, v));
    }
    Ok(())
}

/// Row positions (ascending) satisfying the conjunction of `preds` over
/// the table's columns, resolved through `lookup`. With no predicates,
/// every row matches.
pub fn matching_rows(
    lookup: &dyn Fn(&str) -> Option<Arc<Bat>>,
    row_count: usize,
    preds: &[RowPredicate],
) -> Result<Vec<usize>> {
    let mut mask = vec![true; row_count];
    for p in preds {
        let bat = lookup(p.column())
            .ok_or_else(|| BatError::NotFound(format!("column '{}'", p.column())))?;
        if bat.count() != row_count {
            return Err(BatError::LengthMismatch { left: bat.count(), right: row_count });
        }
        let col = bat.tail();
        match p {
            RowPredicate::Cmp { op, value, .. } => {
                check_comparable(col, value)?;
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && col.cmp_val(i, value).map(|o| op.matches(o)).unwrap_or(false);
                }
            }
            RowPredicate::Between { lo, hi, .. } => {
                check_comparable(col, lo)?;
                check_comparable(col, hi)?;
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && col
                            .cmp_val(i, lo)
                            .map(|o| o != std::cmp::Ordering::Less)
                            .unwrap_or(false)
                        && col
                            .cmp_val(i, hi)
                            .map(|o| o != std::cmp::Ordering::Greater)
                            .unwrap_or(false);
                }
            }
            RowPredicate::InList { values, .. } => {
                if values.is_empty() {
                    return Err(BatError::Invalid("IN list must not be empty".into()));
                }
                for v in values {
                    check_comparable(col, v)?;
                }
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && values.iter().any(|v| {
                            col.cmp_val(i, v)
                                .map(|o| o == std::cmp::Ordering::Equal)
                                .unwrap_or(false)
                        });
                }
            }
        }
    }
    Ok(mask.iter().enumerate().filter_map(|(i, &m)| if m { Some(i) } else { None }).collect())
}

/// The void-head sequence of a persistent column BAT; mutation targets
/// must be dense (the storage shape `extend_tail` also requires).
fn dense_seq(b: &Bat) -> Result<u64> {
    match b.head() {
        Column::Void { seq, .. } => Ok(*seq),
        other => Err(BatError::Invalid(format!(
            "selective mutation needs a dense (void-head) BAT, got {} head",
            other.col_type()
        ))),
    }
}

/// A new BAT with `v` written at each position in `rows` (any order,
/// duplicates allowed; every position is bounds-checked) and every
/// other BUN untouched — the UPDATE kernel. The value coerces into the
/// column type exactly as INSERT appends do.
pub fn scatter_const(b: &Bat, rows: &[usize], v: &Val) -> Result<Bat> {
    let seq = dense_seq(b)?;
    let mut hit = vec![false; b.count()];
    for &r in rows {
        if r >= b.count() {
            return Err(BatError::Invalid(format!(
                "row {r} out of range for a {}-row BAT",
                b.count()
            )));
        }
        hit[r] = true;
    }
    let old = b.tail();
    let mut tail = Column::empty(old.col_type());
    for (i, &h) in hit.iter().enumerate() {
        if h {
            tail.push(v)?;
        } else {
            tail.push(&old.get(i))?;
        }
    }
    Ok(Bat::dense_from(seq, tail))
}

/// A new BAT with the BUNs at `rows` (any order, duplicates allowed)
/// removed and the void head kept dense — the DELETE kernel.
pub fn erase_rows(b: &Bat, rows: &[usize]) -> Result<Bat> {
    let seq = dense_seq(b)?;
    let mut drop = vec![false; b.count()];
    for &r in rows {
        if r >= b.count() {
            return Err(BatError::Invalid(format!(
                "row {r} out of range for a {}-row BAT",
                b.count()
            )));
        }
        drop[r] = true;
    }
    let keep: Vec<usize> = (0..b.count()).filter(|&i| !drop[i]).collect();
    Ok(Bat::dense_from(seq, b.tail().gather(&keep)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Arc<Bat>, Arc<Bat>) {
        let k = Arc::new(Bat::dense(Column::from(vec![1, 2, 3, 4])));
        let v = Arc::new(Bat::dense(Column::from(vec!["a", "b", "c", "d"])));
        (k, v)
    }

    fn lookup(k: &Arc<Bat>, v: &Arc<Bat>) -> impl Fn(&str) -> Option<Arc<Bat>> {
        let (k, v) = (Arc::clone(k), Arc::clone(v));
        move |name: &str| match name {
            "k" => Some(Arc::clone(&k)),
            "v" => Some(Arc::clone(&v)),
            _ => None,
        }
    }

    #[test]
    fn cmp_between_in_conjunction() {
        let (k, v) = table();
        let l = lookup(&k, &v);
        let rows = matching_rows(
            &l,
            4,
            &[RowPredicate::Cmp { column: "k".into(), op: CmpOp::Ge, value: Val::Int(2) }],
        )
        .unwrap();
        assert_eq!(rows, vec![1, 2, 3]);
        let rows = matching_rows(
            &l,
            4,
            &[
                RowPredicate::Between { column: "k".into(), lo: Val::Int(2), hi: Val::Int(3) },
                RowPredicate::InList {
                    column: "v".into(),
                    values: vec![Val::from("c"), Val::from("d")],
                },
            ],
        )
        .unwrap();
        assert_eq!(rows, vec![2]);
        // No predicates: every row.
        assert_eq!(matching_rows(&l, 4, &[]).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unknown_column_and_bad_types_rejected() {
        let (k, v) = table();
        let l = lookup(&k, &v);
        let miss = matching_rows(
            &l,
            4,
            &[RowPredicate::Cmp { column: "ghost".into(), op: CmpOp::Eq, value: Val::Int(1) }],
        );
        assert!(miss.is_err());
        let bad = matching_rows(
            &l,
            4,
            &[RowPredicate::Cmp { column: "k".into(), op: CmpOp::Eq, value: Val::from("x") }],
        );
        assert!(bad.is_err(), "incomparable literal must fail, not match nothing");
        let empty_in =
            matching_rows(&l, 4, &[RowPredicate::InList { column: "k".into(), values: vec![] }]);
        assert!(empty_in.is_err());
    }

    #[test]
    fn scatter_writes_only_selected_rows() {
        let (k, _) = table();
        let out = scatter_const(&k, &[1, 3], &Val::Int(99)).unwrap();
        let tails: Vec<Val> = (0..4).map(|i| out.bun(i).1).collect();
        assert_eq!(tails, vec![Val::Int(1), Val::Int(99), Val::Int(3), Val::Int(99)]);
        assert_eq!(k.bun(1).1, Val::Int(2), "original untouched");
        // Coercion follows INSERT rules (Int literal into a Lng column).
        let l = Bat::dense(Column::Lng(vec![10, 20]));
        let out = scatter_const(&l, &[0], &Val::Int(5)).unwrap();
        assert_eq!(out.bun(0).1, Val::Lng(5));
        // Type mismatch and range errors are loud.
        assert!(scatter_const(&k, &[0], &Val::from("oops")).is_err());
        assert!(scatter_const(&k, &[9], &Val::Int(1)).is_err());
        // Unsorted and duplicated positions behave identically to the
        // sorted unique list — and out-of-range errs regardless of
        // position in the list.
        let out = scatter_const(&k, &[3, 1, 3], &Val::Int(99)).unwrap();
        let tails: Vec<Val> = (0..4).map(|i| out.bun(i).1).collect();
        assert_eq!(tails, vec![Val::Int(1), Val::Int(99), Val::Int(3), Val::Int(99)]);
        assert!(scatter_const(&k, &[9, 0], &Val::Int(1)).is_err());
    }

    #[test]
    fn erase_keeps_dense_head() {
        let (_, v) = table();
        let out = erase_rows(&v, &[0, 2]).unwrap();
        assert_eq!(out.count(), 2);
        assert_eq!(out.bun(0), (Val::Oid(0), Val::from("b")));
        assert_eq!(out.bun(1), (Val::Oid(1), Val::from("d")));
        assert!(erase_rows(&v, &[4]).is_err());
        // Deleting everything leaves a typed empty BAT.
        let empty = erase_rows(&v, &[0, 1, 2, 3]).unwrap();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.tail_type(), crate::value::ColType::Str);
    }

    #[test]
    fn non_dense_heads_rejected() {
        let keyed = Bat::new(Column::from(vec![5u64, 6]), Column::from(vec![1, 2])).unwrap();
        assert!(scatter_const(&keyed, &[0], &Val::Int(9)).is_err());
        assert!(erase_rows(&keyed, &[0]).is_err());
    }
}
