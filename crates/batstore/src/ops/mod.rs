//! The binary relational-algebra operator library. Every operator that
//! appears in the paper's MAL plans lives here, plus the standard
//! analytic set needed by the SQL front-end.
//!
//! Naming follows MonetDB's `algebra`/`bat` modules: `select`, `uselect`,
//! `join`, `reverse`, `mark`, `mirror`, `semijoin`, `kdifference`,
//! `slice`, plus group/aggregate and sort kernels.

mod aggregate;
mod join;
mod mutate;
mod select;
mod setops;
mod sort;

pub use aggregate::{
    avg, count, distinct, group_by, group_derive, grouped_avg, grouped_count, grouped_max,
    grouped_min, grouped_sum, max, min, sum,
};
pub use join::{join, leftjoin};
pub use mutate::{erase_rows, matching_rows, scatter_const, RowPredicate};
pub use select::{select_range, theta_select, uselect, CmpOp};
pub use setops::{kdifference, kintersect, kunion, semijoin};
pub use sort::{sort_tail, topn};

use crate::bat::{Bat, Props};
use crate::column::Column;
use crate::error::Result;

/// `bat.reverse(b)`: swap head and tail. O(1) in MonetDB; here the void
/// head must be materialized.
pub fn reverse(b: &Bat) -> Bat {
    let (head, tail) = (b.head().clone().materialize(), b.tail().clone());
    let props = Props { tail_sorted: head.is_sorted(), head_key: false, no_nil: true };
    // reverse(head→tail) = (tail→head); lengths are equal by construction.
    Bat::with_props(tail, head, props).expect("reverse preserves length")
}

/// `bat.mirror(b)`: head→head (both sides the head column).
pub fn mirror(b: &Bat) -> Bat {
    let head = b.head().clone();
    let tail = b.head().clone().materialize();
    let props = Props { tail_sorted: tail.is_sorted(), head_key: b.props().head_key, no_nil: true };
    Bat::with_props(head, tail, props).expect("mirror preserves length")
}

/// `algebra.markT(b, base)`: keep the head, replace the tail with a dense
/// OID sequence starting at `base`. Used to renumber join results into
/// result-set positions (see the paper's Table 1 plan).
pub fn mark_tail(b: &Bat, base: u64) -> Bat {
    let head = b.head().clone();
    let len = head.len();
    let props = Props { tail_sorted: true, head_key: b.props().head_key, no_nil: true };
    Bat::with_props(head, Column::Void { seq: base, len }, props).expect("markT preserves length")
}

/// `algebra.markH(b, base)`: keep the tail, replace the head with a dense
/// OID sequence starting at `base`.
pub fn mark_head(b: &Bat, base: u64) -> Bat {
    let tail = b.tail().clone();
    let len = tail.len();
    let props = Props { tail_sorted: b.props().tail_sorted, head_key: true, no_nil: true };
    Bat::with_props(Column::Void { seq: base, len }, tail, props).expect("markH preserves length")
}

/// `algebra.slice(b, lo, hi)`: BUNs in position range `[lo, hi]`
/// (inclusive, MonetDB-style).
pub fn slice(b: &Bat, lo: usize, hi: usize) -> Bat {
    b.slice(lo, hi.saturating_add(1))
}

/// `algebra.project(b, v)`: constant tail of `v` aligned with `b`'s head.
pub fn project_const(b: &Bat, v: &crate::value::Val) -> Result<Bat> {
    let head = b.head().clone();
    let mut tail =
        Column::empty(v.col_type().ok_or_else(|| {
            crate::error::BatError::Invalid("cannot project nil constant".into())
        })?);
    for _ in 0..head.len() {
        tail.push(v)?;
    }
    Bat::new(head, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn b123() -> Bat {
        Bat::dense(Column::from(vec![10, 20, 30]))
    }

    #[test]
    fn reverse_swaps() {
        let r = reverse(&b123());
        assert_eq!(r.bun(0), (Val::Int(10), Val::Oid(0)));
        assert_eq!(r.bun(2), (Val::Int(30), Val::Oid(2)));
        assert!(r.props().tail_sorted, "oid tail of a dense head is sorted");
    }

    #[test]
    fn reverse_twice_identity_on_buns() {
        let b = b123();
        let rr = reverse(&reverse(&b));
        for i in 0..b.count() {
            assert_eq!(rr.bun(i), b.bun(i));
        }
    }

    #[test]
    fn mirror_maps_head_to_head() {
        let m = mirror(&b123());
        assert_eq!(m.bun(1), (Val::Oid(1), Val::Oid(1)));
    }

    #[test]
    fn mark_tail_renumbers() {
        let m = mark_tail(&reverse(&b123()), 100);
        assert_eq!(m.bun(0), (Val::Int(10), Val::Oid(100)));
        assert_eq!(m.bun(2), (Val::Int(30), Val::Oid(102)));
        assert!(m.props().tail_sorted);
    }

    #[test]
    fn mark_head_renumbers() {
        let m = mark_head(&b123(), 5);
        assert_eq!(m.bun(0), (Val::Oid(5), Val::Int(10)));
    }

    #[test]
    fn slice_is_inclusive() {
        let s = slice(&b123(), 1, 2);
        assert_eq!(s.count(), 2);
        assert_eq!(s.bun(0).1, Val::Int(20));
    }

    #[test]
    fn project_const_aligns() {
        let p = project_const(&b123(), &Val::Int(7)).unwrap();
        assert_eq!(p.count(), 3);
        assert_eq!(p.bun(2), (Val::Oid(2), Val::Int(7)));
        assert!(project_const(&b123(), &Val::Nil).is_err());
    }
}
