//! Join kernels. `algebra.join(l, r)` matches `l`'s tail against `r`'s
//! head and yields `(l.head, r.tail)` for every match — the workhorse of
//! MonetDB's binary algebra.
//!
//! Algorithm selection per the BAT properties: a sort-merge pass when both
//! join columns are sorted, otherwise a hash join building on the smaller
//! side.

use crate::bat::{Bat, Props};
use crate::column::{Column, Key};
use crate::error::{BatError, Result};
use std::collections::HashMap;

/// `algebra.join(l, r)`: inner equi-join of `l.tail` with `r.head`,
/// producing `(l.head, r.tail)` pairs in l-major order.
pub fn join(l: &Bat, r: &Bat) -> Result<Bat> {
    let (li, ri) = join_index(l.tail(), r.head())?;
    build_joined(l, r, &li, &ri)
}

/// Left outer join is intentionally absent from the paper's plans; what
/// the front-end needs is `leftjoin`, MonetDB's name for the *inner* join
/// that preserves the left order (which `join` already does here; provided
/// as an alias for plan readability).
pub fn leftjoin(l: &Bat, r: &Bat) -> Result<Bat> {
    join(l, r)
}

/// Positions `(li, ri)` of matching pairs between two columns.
fn join_index(left: &Column, right: &Column) -> Result<(Vec<usize>, Vec<usize>)> {
    if !left.join_compatible(right) {
        return Err(BatError::TypeMismatch {
            expected: left.col_type().name(),
            got: right.col_type().name().to_string(),
        });
    }
    if left.is_sorted() && right.is_sorted() {
        merge_join_index(left, right)
    } else {
        Ok(hash_join_index(left, right))
    }
}

fn hash_join_index(left: &Column, right: &Column) -> (Vec<usize>, Vec<usize>) {
    // Build on the smaller input, probe with the larger; emit in
    // probe-major order, then swap back if we built on the left.
    let (build, probe, swapped) =
        if left.len() <= right.len() { (left, right, true) } else { (right, left, false) };

    let mut table: HashMap<Key<'_>, Vec<usize>> = HashMap::with_capacity(build.len());
    for i in 0..build.len() {
        table.entry(build.key(i)).or_default().push(i);
    }
    let mut bi = Vec::new();
    let mut pi = Vec::new();
    for j in 0..probe.len() {
        if let Some(matches) = table.get(&probe.key(j)) {
            for &i in matches {
                bi.push(i);
                pi.push(j);
            }
        }
    }
    if swapped {
        // build == left: (bi, pi) are (left, right) but in right-major
        // order; re-sort to left-major for deterministic plan output.
        let mut perm: Vec<usize> = (0..bi.len()).collect();
        perm.sort_by_key(|&k| (bi[k], pi[k]));
        (perm.iter().map(|&k| bi[k]).collect(), perm.iter().map(|&k| pi[k]).collect())
    } else {
        (pi, bi)
    }
}

fn merge_join_index(left: &Column, right: &Column) -> Result<(Vec<usize>, Vec<usize>)> {
    let (mut li, mut ri) = (Vec::new(), Vec::new());
    let (n, m) = (left.len(), right.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        // `join_compatible` was checked by the caller, but this kernel is
        // reachable from arbitrary SQL: an incomparable element pair is a
        // classified error, never a panic in the event loop.
        let ord = left.cmp_elem(i, right, j).ok_or_else(|| BatError::TypeMismatch {
            expected: left.col_type().name(),
            got: right.col_type().name().to_string(),
        })?;
        match ord {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full cross product of the equal runs.
                let mut j2 = j;
                while j2 < m && left.cmp_elem(i, right, j2) == Some(std::cmp::Ordering::Equal) {
                    li.push(i);
                    ri.push(j2);
                    j2 += 1;
                }
                i += 1;
                // j stays: the next left element may match the same run.
            }
        }
    }
    Ok((li, ri))
}

fn build_joined(l: &Bat, r: &Bat, li: &[usize], ri: &[usize]) -> Result<Bat> {
    let head = l.head().gather(li);
    let tail = r.tail().gather(ri);
    let props = Props { tail_sorted: tail.is_sorted(), head_key: false, no_nil: true };
    Bat::with_props(head, tail, props)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reverse;
    use crate::value::Val;

    #[test]
    fn paper_example_join_shape() {
        // The paper's plan: X1 = t.id (void→int), X6 = c.t_id (void→int),
        // X9 = reverse(X6) (int→oid), X10 = join(X1, X9) (void→oid).
        let t_id = Bat::dense(Column::from(vec![1, 2, 3]));
        let c_t_id = Bat::dense(Column::from(vec![2, 2, 3, 9]));
        let x9 = reverse(&c_t_id);
        let x10 = join(&t_id, &x9).unwrap();
        // t row 1 (id=2) matches c rows 0,1; t row 2 (id=3) matches c row 2.
        let buns: Vec<(Val, Val)> = (0..x10.count()).map(|i| x10.bun(i)).collect();
        assert_eq!(
            buns,
            vec![
                (Val::Oid(1), Val::Oid(0)),
                (Val::Oid(1), Val::Oid(1)),
                (Val::Oid(2), Val::Oid(2)),
            ]
        );
    }

    #[test]
    fn hash_and_merge_agree() {
        // Same data sorted (merge path) vs shuffled (hash path) must give
        // the same multiset of (l.head value, r.tail value) pairs.
        let l_sorted = Bat::dense(Column::from(vec![1, 2, 2, 5, 7]));
        let r_sorted = reverse(&Bat::dense(Column::from(vec![2, 2, 5, 6])));
        let merged = join(&l_sorted, &r_sorted).unwrap();

        let l_shuf = Bat::dense(Column::from(vec![7, 2, 5, 2, 1]));
        let hashed = join(&l_shuf, &r_sorted).unwrap();

        let mut a: Vec<(Val, Val)> = (0..merged.count())
            .map(|i| (merged.bun(i).1.clone(), merged.bun(i).1.clone()))
            .collect();
        let mut b: Vec<(Val, Val)> = (0..hashed.count())
            .map(|i| (hashed.bun(i).1.clone(), hashed.bun(i).1.clone()))
            .collect();
        let key = |v: &(Val, Val)| format!("{:?}", v);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(merged.count(), 5, "2x2 cross product + one 5-match");
    }

    #[test]
    fn join_on_strings() {
        let l = Bat::dense(Column::from(vec!["de", "nl", "fr"]));
        let r = reverse(&Bat::dense(Column::from(vec!["nl", "de"])));
        let j = join(&l, &r).unwrap();
        assert_eq!(j.count(), 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        let l = Bat::dense(Column::from(vec![1, 2]));
        let r = reverse(&Bat::dense(Column::from(vec!["x"])));
        assert!(join(&l, &r).is_err());
    }

    #[test]
    fn empty_inputs() {
        let l = Bat::empty(crate::value::ColType::Int);
        let r = reverse(&Bat::dense(Column::from(vec![1, 2])));
        assert_eq!(join(&l, &r).unwrap().count(), 0);
        assert_eq!(join(&Bat::dense(Column::from(vec![1])), &reverse(&l)).unwrap().count(), 0);
    }

    #[test]
    fn no_matches() {
        let l = Bat::dense(Column::from(vec![1, 2, 3]));
        let r = reverse(&Bat::dense(Column::from(vec![10, 20])));
        assert_eq!(join(&l, &r).unwrap().count(), 0);
    }

    #[test]
    fn leftjoin_alias() {
        let l = Bat::dense(Column::from(vec![1, 2]));
        let r = reverse(&Bat::dense(Column::from(vec![2])));
        assert_eq!(leftjoin(&l, &r).unwrap().count(), join(&l, &r).unwrap().count());
    }

    #[test]
    fn left_major_order_preserved() {
        // Hash path with build on left (left smaller) must still emit
        // l-major order.
        let l = Bat::dense(Column::from(vec![5, 1]));
        let r = reverse(&Bat::dense(Column::from(vec![1, 5, 1])));
        let j = join(&l, &r).unwrap();
        let heads: Vec<Val> = (0..j.count()).map(|i| j.bun(i).0).collect();
        assert_eq!(heads, vec![Val::Oid(0), Val::Oid(1), Val::Oid(1)]);
    }
}
