//! Aggregation: whole-column aggregates (`aggr.count/sum/min/max/avg`)
//! and grouped variants driven by a group-id mapping produced by
//! [`group_by`].

use crate::bat::{Bat, Props};
use crate::column::{Column, Key};
use crate::error::{BatError, Result};
use crate::value::Val;
use std::collections::HashMap;

/// `aggr.count(b)`.
pub fn count(b: &Bat) -> u64 {
    b.count() as u64
}

/// `aggr.sum(b)`: integer columns sum to `Lng`, floats to `Dbl`.
///
/// Integer sums accumulate in `i128` and narrow once at the end: a
/// column of near-`i64::MAX` values must surface a classified
/// [`BatError::Overflow`], not panic in debug builds or wrap in release
/// (TPC-H Q1's price sums are exactly this shape at scale).
pub fn sum(b: &Bat) -> Result<Val> {
    Ok(match b.tail() {
        Column::Int(v) => Val::Lng(narrow_sum(v.iter().map(|&x| x as i128).sum())?),
        Column::Lng(v) => Val::Lng(narrow_sum(v.iter().map(|&x| x as i128).sum())?),
        Column::Dbl(v) => Val::Dbl(v.iter().sum()),
        Column::Oid(v) => Val::Lng(narrow_sum(v.iter().map(|&x| x as i128).sum())?),
        other => {
            return Err(BatError::TypeMismatch {
                expected: "numeric",
                got: other.col_type().name().to_string(),
            })
        }
    })
}

/// Narrow an `i128` accumulator back to the `Lng` output type.
fn narrow_sum(total: i128) -> Result<i64> {
    i64::try_from(total)
        .map_err(|_| BatError::Overflow(format!("sum {total} does not fit in a 64-bit integer")))
}

/// `aggr.min(b)`; `Nil` on empty input.
pub fn min(b: &Bat) -> Val {
    extremum(b, std::cmp::Ordering::Less)
}

/// `aggr.max(b)`; `Nil` on empty input.
pub fn max(b: &Bat) -> Val {
    extremum(b, std::cmp::Ordering::Greater)
}

fn extremum(b: &Bat, want: std::cmp::Ordering) -> Val {
    let mut best: Option<Val> = None;
    for i in 0..b.count() {
        let v = b.tail().get(i);
        match &best {
            None => best = Some(v),
            Some(cur) => {
                if v.try_cmp(cur) == Some(want) {
                    best = Some(v);
                }
            }
        }
    }
    best.unwrap_or(Val::Nil)
}

/// `aggr.avg(b)`; `Nil` on empty input.
pub fn avg(b: &Bat) -> Result<Val> {
    if b.is_empty() {
        return Ok(Val::Nil);
    }
    let s = sum(b)?;
    let n = b.count() as f64;
    Ok(Val::Dbl(s.as_f64().expect("sum is numeric") / n))
}

/// `group.new(b)`: group BUNs by tail value. Returns `(grp, ext)`:
/// * `grp`: `b.head → group-id` (one BUN per input BUN),
/// * `ext`: `group-id → representative tail value` (one BUN per group,
///   in first-appearance order).
pub fn group_by(b: &Bat) -> (Bat, Bat) {
    let mut ids: HashMap<Key<'_>, u64> = HashMap::new();
    let mut gids: Vec<u64> = Vec::with_capacity(b.count());
    let mut reps: Vec<usize> = Vec::new();
    for i in 0..b.count() {
        let next = ids.len() as u64;
        let gid = *ids.entry(b.tail().key(i)).or_insert_with(|| {
            reps.push(i);
            next
        });
        gids.push(gid);
    }
    let grp = Bat::with_props(
        b.head().clone(),
        Column::Oid(gids),
        Props { tail_sorted: false, head_key: b.props().head_key, no_nil: true },
    )
    .expect("parallel");
    let ext = Bat::with_props(
        Column::Void { seq: 0, len: reps.len() },
        b.tail().gather(&reps),
        Props { tail_sorted: false, head_key: true, no_nil: true },
    )
    .expect("parallel");
    (grp, ext)
}

/// `group.derive(b, grp)`: refine an existing grouping by a further
/// column — the MonetDB idiom for multi-column GROUP BY. Rows fall into
/// the same refined group iff they shared a group in `grp` *and* have
/// equal tails in `b`. Returns `(grp', ext')` like [`group_by`], where
/// `ext'` maps each refined group to a representative row position.
pub fn group_derive(b: &Bat, grp: &Bat) -> Result<(Bat, Bat)> {
    check_grouped(b, grp)?;
    let ids = group_ids(grp)?;
    let mut seen: HashMap<(u64, Key<'_>), u64> = HashMap::new();
    let mut gids: Vec<u64> = Vec::with_capacity(b.count());
    let mut reps: Vec<usize> = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        let key = (id, b.tail().key(i));
        let next = seen.len() as u64;
        let gid = *seen.entry(key).or_insert_with(|| {
            reps.push(i);
            next
        });
        gids.push(gid);
    }
    let grp2 = Bat::with_props(
        b.head().clone(),
        Column::Oid(gids),
        Props { tail_sorted: false, head_key: b.props().head_key, no_nil: true },
    )
    .expect("parallel");
    let ext2 = Bat::with_props(
        Column::Void { seq: 0, len: reps.len() },
        Column::Oid(reps.iter().map(|&i| i as u64).collect()),
        Props { tail_sorted: true, head_key: true, no_nil: true },
    )
    .expect("parallel");
    Ok((grp2, ext2))
}

/// Distinct tail values of `b`, in first-appearance order (SELECT
/// DISTINCT kernel). Heads are renumbered densely.
pub fn distinct(b: &Bat) -> Bat {
    let (_, ext) = group_by(b);
    ext
}

fn group_ids(grp: &Bat) -> Result<&[u64]> {
    grp.tail().as_oid().ok_or(BatError::TypeMismatch {
        expected: "oid group ids",
        got: grp.tail_type().name().to_string(),
    })
}

fn check_grouped(vals: &Bat, grp: &Bat) -> Result<()> {
    if vals.count() != grp.count() {
        return Err(BatError::LengthMismatch { left: vals.count(), right: grp.count() });
    }
    Ok(())
}

/// A group id produced by [`group_by`]/[`group_derive`] must address an
/// accumulator slot; a stale or foreign grouping BAT must fail the
/// query, not panic the kernel on an out-of-bounds index.
fn group_slot(g: u64, ngroups: usize) -> Result<usize> {
    let slot = g as usize;
    if slot >= ngroups {
        return Err(BatError::Invalid(format!("group id {g} out of range (ngroups {ngroups})")));
    }
    Ok(slot)
}

/// `aggr.count` per group: `group-id → count`.
pub fn grouped_count(grp: &Bat, ngroups: usize) -> Result<Bat> {
    let ids = group_ids(grp)?;
    let mut counts = vec![0i64; ngroups];
    for &g in ids {
        counts[group_slot(g, ngroups)?] += 1;
    }
    Ok(Bat::dense(Column::Lng(counts)))
}

/// `aggr.sum` per group over `vals` (positionally aligned with `grp`).
/// Integer accumulators are `i128` like the whole-column [`sum`]: a
/// per-group overflow surfaces as a classified [`BatError::Overflow`].
pub fn grouped_sum(vals: &Bat, grp: &Bat, ngroups: usize) -> Result<Bat> {
    check_grouped(vals, grp)?;
    let ids = group_ids(grp)?;
    match vals.tail() {
        Column::Int(v) => {
            let mut acc = vec![0i128; ngroups];
            for (i, &g) in ids.iter().enumerate() {
                acc[group_slot(g, ngroups)?] += v[i] as i128;
            }
            Ok(Bat::dense(Column::Lng(narrow_grouped(acc)?)))
        }
        Column::Lng(v) => {
            let mut acc = vec![0i128; ngroups];
            for (i, &g) in ids.iter().enumerate() {
                acc[group_slot(g, ngroups)?] += v[i] as i128;
            }
            Ok(Bat::dense(Column::Lng(narrow_grouped(acc)?)))
        }
        Column::Dbl(v) => {
            let mut acc = vec![0f64; ngroups];
            for (i, &g) in ids.iter().enumerate() {
                acc[group_slot(g, ngroups)?] += v[i];
            }
            Ok(Bat::dense(Column::Dbl(acc)))
        }
        other => Err(BatError::TypeMismatch {
            expected: "numeric",
            got: other.col_type().name().to_string(),
        }),
    }
}

fn narrow_grouped(acc: Vec<i128>) -> Result<Vec<i64>> {
    acc.into_iter().map(narrow_sum).collect()
}

/// `aggr.avg` per group.
pub fn grouped_avg(vals: &Bat, grp: &Bat, ngroups: usize) -> Result<Bat> {
    let sums = grouped_sum(vals, grp, ngroups)?;
    let counts = grouped_count(grp, ngroups)?;
    let mut out = Vec::with_capacity(ngroups);
    for g in 0..ngroups {
        let s = sums.tail().get(g).as_f64().expect("numeric");
        let c = counts.tail().get(g).as_f64().expect("numeric");
        out.push(if c == 0.0 { 0.0 } else { s / c });
    }
    Ok(Bat::dense(Column::Dbl(out)))
}

/// `aggr.min` per group.
pub fn grouped_min(vals: &Bat, grp: &Bat, ngroups: usize) -> Result<Bat> {
    grouped_extremum(vals, grp, ngroups, std::cmp::Ordering::Less)
}

/// `aggr.max` per group.
pub fn grouped_max(vals: &Bat, grp: &Bat, ngroups: usize) -> Result<Bat> {
    grouped_extremum(vals, grp, ngroups, std::cmp::Ordering::Greater)
}

fn grouped_extremum(
    vals: &Bat,
    grp: &Bat,
    ngroups: usize,
    want: std::cmp::Ordering,
) -> Result<Bat> {
    check_grouped(vals, grp)?;
    let ids = group_ids(grp)?;
    let mut best: Vec<Option<usize>> = vec![None; ngroups];
    for (i, &g) in ids.iter().enumerate() {
        let slot = &mut best[group_slot(g, ngroups)?];
        match slot {
            None => *slot = Some(i),
            Some(j) => {
                if vals.tail().cmp_elem(i, vals.tail(), *j) == Some(want) {
                    *slot = Some(i);
                }
            }
        }
    }
    let idx: Vec<usize> = best
        .into_iter()
        .map(|o| o.ok_or_else(|| BatError::Invalid("empty group".into())))
        .collect::<Result<_>>()?;
    Ok(Bat::dense(vals.tail().gather(&idx)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals() -> Bat {
        Bat::dense(Column::from(vec![10, 20, 10, 30, 20, 10]))
    }

    #[test]
    fn whole_column_aggregates() {
        let b = vals();
        assert_eq!(count(&b), 6);
        assert_eq!(sum(&b).unwrap(), Val::Lng(100));
        assert_eq!(min(&b), Val::Int(10));
        assert_eq!(max(&b), Val::Int(30));
        assert_eq!(avg(&b).unwrap(), Val::Dbl(100.0 / 6.0));
    }

    #[test]
    fn empty_aggregates() {
        let e = Bat::empty(crate::value::ColType::Int);
        assert_eq!(count(&e), 0);
        assert_eq!(min(&e), Val::Nil);
        assert_eq!(avg(&e).unwrap(), Val::Nil);
        assert_eq!(sum(&e).unwrap(), Val::Lng(0));
    }

    #[test]
    fn sum_rejects_strings() {
        let s = Bat::dense(Column::from(vec!["a"]));
        assert!(sum(&s).is_err());
    }

    #[test]
    fn group_by_first_appearance_order() {
        let (grp, ext) = group_by(&vals());
        assert_eq!(ext.count(), 3);
        assert_eq!(ext.bun(0).1, Val::Int(10));
        assert_eq!(ext.bun(1).1, Val::Int(20));
        assert_eq!(ext.bun(2).1, Val::Int(30));
        let ids = grp.tail().as_oid().unwrap();
        assert_eq!(ids, &[0, 1, 0, 2, 1, 0]);
    }

    #[test]
    fn grouped_aggregates() {
        let b = vals();
        let (grp, ext) = group_by(&b);
        let n = ext.count();
        let c = grouped_count(&grp, n).unwrap();
        assert_eq!(c.tail().as_lng().unwrap(), &[3, 2, 1]);
        let s = grouped_sum(&b, &grp, n).unwrap();
        assert_eq!(s.tail().as_lng().unwrap(), &[30, 40, 30]);
        let a = grouped_avg(&b, &grp, n).unwrap();
        assert_eq!(a.tail().as_dbl().unwrap(), &[10.0, 20.0, 30.0]);
    }

    #[test]
    fn grouped_min_max_follow_other_column() {
        // Group by one column, aggregate another: amounts grouped by key.
        let keys = Bat::dense(Column::from(vec!["a", "b", "a", "b"]));
        let amounts = Bat::dense(Column::from(vec![5, 7, 3, 9]));
        let (grp, ext) = group_by(&keys);
        let mn = grouped_min(&amounts, &grp, ext.count()).unwrap();
        let mx = grouped_max(&amounts, &grp, ext.count()).unwrap();
        assert_eq!(mn.tail().as_int().unwrap(), &[3, 7]);
        assert_eq!(mx.tail().as_int().unwrap(), &[5, 9]);
    }

    #[test]
    fn grouped_length_mismatch() {
        let (grp, _) = group_by(&vals());
        let short = Bat::dense(Column::from(vec![1]));
        assert!(grouped_sum(&short, &grp, 3).is_err());
    }

    #[test]
    fn sum_overflow_is_classified() {
        let b = Bat::dense(Column::from(vec![i64::MAX, i64::MAX]));
        match sum(&b) {
            Err(BatError::Overflow(_)) => {}
            other => panic!("expected Overflow, got {other:?}"),
        }
        // A negative overflow too.
        let b = Bat::dense(Column::from(vec![i64::MIN, -1i64]));
        assert!(matches!(sum(&b), Err(BatError::Overflow(_))));
        // Large but in-range sums still narrow fine.
        let b = Bat::dense(Column::from(vec![i64::MAX, i64::MIN]));
        assert_eq!(sum(&b).unwrap(), Val::Lng(-1));
    }

    #[test]
    fn grouped_sum_overflow_is_classified() {
        let keys = Bat::dense(Column::from(vec!["a", "a", "b"]));
        let vals = Bat::dense(Column::from(vec![i64::MAX, 1i64, 7]));
        let (grp, ext) = group_by(&keys);
        match grouped_sum(&vals, &grp, ext.count()) {
            Err(BatError::Overflow(_)) => {}
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn hostile_group_ids_error_not_panic() {
        // A grouping BAT whose ids exceed ngroups (stale or foreign)
        // must produce a classified error in every grouped kernel.
        let grp = Bat::dense(Column::Oid(vec![0, 7]));
        let vals = Bat::dense(Column::from(vec![1, 2]));
        assert!(matches!(grouped_count(&grp, 2), Err(BatError::Invalid(_))));
        assert!(matches!(grouped_sum(&vals, &grp, 2), Err(BatError::Invalid(_))));
        assert!(matches!(grouped_min(&vals, &grp, 2), Err(BatError::Invalid(_))));
        assert!(matches!(grouped_avg(&vals, &grp, 2), Err(BatError::Invalid(_))));
    }

    #[test]
    fn group_by_strings() {
        let b = Bat::dense(Column::from(vec!["x", "y", "x"]));
        let (_, ext) = group_by(&b);
        assert_eq!(ext.count(), 2);
    }

    #[test]
    fn group_derive_refines() {
        // Group by region, refine by quarter: (eu,1) (eu,2) (us,1).
        let region = Bat::dense(Column::from(vec!["eu", "eu", "us", "eu", "us"]));
        let quarter = Bat::dense(Column::from(vec![1, 2, 1, 1, 1]));
        let (g1, e1) = group_by(&region);
        assert_eq!(e1.count(), 2);
        let (g2, e2) = group_derive(&quarter, &g1).unwrap();
        assert_eq!(e2.count(), 3, "refined groups: (eu,1) (eu,2) (us,1)");
        let ids = g2.tail().as_oid().unwrap();
        assert_eq!(ids[0], ids[3], "rows 0 and 3 are both (eu,1)");
        assert_eq!(ids[2], ids[4], "rows 2 and 4 are both (us,1)");
        assert_ne!(ids[0], ids[1]);
        // Representative rows point at first appearances.
        assert_eq!(e2.tail().as_oid().unwrap(), &[0, 1, 2]);
        // Grouped aggregates work over the refined grouping.
        let amounts = Bat::dense(Column::from(vec![10, 20, 30, 40, 50]));
        let sums = grouped_sum(&amounts, &g2, e2.count()).unwrap();
        assert_eq!(sums.tail().as_lng().unwrap(), &[50, 20, 80]);
    }

    #[test]
    fn group_derive_checks_alignment() {
        let a = Bat::dense(Column::from(vec![1, 2]));
        let (g, _) = group_by(&Bat::dense(Column::from(vec![1, 2, 3])));
        assert!(group_derive(&a, &g).is_err());
    }

    #[test]
    fn distinct_first_appearance() {
        let b = Bat::dense(Column::from(vec![3, 1, 3, 2, 1]));
        let d = distinct(&b);
        assert_eq!(d.tail().as_int().unwrap(), &[3, 1, 2]);
    }
}
