//! Set-style operators keyed on the head column: `semijoin` (keep BUNs of
//! `l` whose head appears in `r`'s head), `kdifference` (keep those that
//! do not), `kintersect` (alias with MonetDB's historical name).

use crate::bat::{Bat, Props};
use crate::column::Key;
use crate::error::{BatError, Result};
use std::collections::HashSet;

fn head_set<'a>(b: &'a Bat) -> HashSet<Key<'a>> {
    (0..b.count()).map(|i| b.head().key(i)).collect()
}

fn filter_by_head(l: &Bat, keep: impl Fn(&Key<'_>) -> bool) -> Bat {
    let idx: Vec<usize> = (0..l.count()).filter(|&i| keep(&l.head().key(i))).collect();
    let head = l.head().gather(&idx);
    let tail = l.tail().gather(&idx);
    let props =
        Props { tail_sorted: l.props().tail_sorted, head_key: l.props().head_key, no_nil: true };
    // Both columns are gathered by the same index list, so the only
    // `with_props` failure mode (length mismatch) cannot occur for any
    // input — this is a local invariant, not a reachable-from-SQL path.
    Bat::with_props(head, tail, props).expect("parallel gather")
}

fn check_heads(l: &Bat, r: &Bat) -> Result<()> {
    if !l.head().join_compatible(r.head()) {
        return Err(BatError::TypeMismatch {
            expected: l.head_type().name(),
            got: r.head_type().name().to_string(),
        });
    }
    Ok(())
}

/// `algebra.semijoin(l, r)`: BUNs of `l` whose head occurs among `r`'s
/// heads.
pub fn semijoin(l: &Bat, r: &Bat) -> Result<Bat> {
    check_heads(l, r)?;
    let set = head_set(r);
    Ok(filter_by_head(l, |k| set.contains(k)))
}

/// `algebra.kdifference(l, r)`: BUNs of `l` whose head does *not* occur
/// among `r`'s heads.
pub fn kdifference(l: &Bat, r: &Bat) -> Result<Bat> {
    check_heads(l, r)?;
    let set = head_set(r);
    Ok(filter_by_head(l, |k| !set.contains(k)))
}

/// MonetDB's `kintersect` — same as semijoin on heads.
pub fn kintersect(l: &Bat, r: &Bat) -> Result<Bat> {
    semijoin(l, r)
}

/// `algebra.kunion(l, r)`: all BUNs of `l`, plus those BUNs of `r` whose
/// head does not occur in `l` (head-keyed set union, keeping `l`'s
/// values on conflicts). The OR / IN-list kernel.
pub fn kunion(l: &Bat, r: &Bat) -> Result<Bat> {
    check_heads(l, r)?;
    if !l.tail().join_compatible(r.tail()) {
        return Err(BatError::TypeMismatch {
            expected: l.tail_type().name(),
            got: r.tail_type().name().to_string(),
        });
    }
    let lset = head_set(l);
    let mut head = l.head().clone().materialize();
    let mut tail = l.tail().clone();
    for i in 0..r.count() {
        if !lset.contains(&r.head().key(i)) {
            let (h, t) = r.bun(i);
            head.push(&h)?;
            tail.push(&t)?;
        }
    }
    Bat::new(head, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Val;

    fn l() -> Bat {
        Bat::new(Column::Oid(vec![0, 1, 2, 3]), Column::from(vec![10, 11, 12, 13])).unwrap()
    }
    fn r() -> Bat {
        Bat::new(Column::Oid(vec![1, 3, 9]), Column::from(vec!["a", "b", "c"])).unwrap()
    }

    #[test]
    fn semijoin_keeps_matching_heads() {
        let s = semijoin(&l(), &r()).unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.bun(0), (Val::Oid(1), Val::Int(11)));
        assert_eq!(s.bun(1), (Val::Oid(3), Val::Int(13)));
    }

    #[test]
    fn kdifference_complements_semijoin() {
        let s = semijoin(&l(), &r()).unwrap();
        let d = kdifference(&l(), &r()).unwrap();
        assert_eq!(s.count() + d.count(), l().count());
        assert_eq!(d.bun(0), (Val::Oid(0), Val::Int(10)));
    }

    #[test]
    fn kintersect_is_semijoin() {
        assert_eq!(kintersect(&l(), &r()).unwrap().count(), semijoin(&l(), &r()).unwrap().count());
    }

    #[test]
    fn void_heads_work() {
        let dense = Bat::dense(Column::from(vec![1, 2, 3]));
        let keys = Bat::new(Column::Oid(vec![0, 2]), Column::from(vec![0, 0])).unwrap();
        let s = semijoin(&dense, &keys).unwrap();
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn incompatible_heads_rejected() {
        let a = Bat::dense(Column::from(vec![1]));
        let strhead = Bat::new(Column::from(vec!["x"]), Column::from(vec![1i32])).unwrap();
        assert!(semijoin(&a, &strhead).is_err());
    }

    #[test]
    fn kunion_merges_by_head() {
        let a = Bat::new(Column::Oid(vec![0, 2]), Column::from(vec![10, 12])).unwrap();
        let b = Bat::new(Column::Oid(vec![2, 3]), Column::from(vec![99, 13])).unwrap();
        let u = kunion(&a, &b).unwrap();
        assert_eq!(u.count(), 3);
        assert_eq!(u.bun(0), (Val::Oid(0), Val::Int(10)));
        assert_eq!(u.bun(1), (Val::Oid(2), Val::Int(12)), "left wins on conflict");
        assert_eq!(u.bun(2), (Val::Oid(3), Val::Int(13)));
    }

    #[test]
    fn kunion_with_empty_sides() {
        let a = Bat::new(Column::Oid(vec![1]), Column::from(vec![5])).unwrap();
        let e = Bat::new(Column::Oid(vec![]), Column::Int(vec![])).unwrap();
        assert_eq!(kunion(&a, &e).unwrap().count(), 1);
        assert_eq!(kunion(&e, &a).unwrap().count(), 1);
    }

    #[test]
    fn kunion_rejects_mismatched_tails() {
        let a = Bat::new(Column::Oid(vec![1]), Column::from(vec![5])).unwrap();
        let b = Bat::new(Column::Oid(vec![2]), Column::from(vec!["x"])).unwrap();
        assert!(kunion(&a, &b).is_err());
    }
}
