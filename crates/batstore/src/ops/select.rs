//! Selection operators: the filters of the binary algebra. They preserve
//! the head values of qualifying BUNs (so downstream joins can realign on
//! OIDs) and filter on the tail.

use crate::bat::{Bat, Props};
use crate::error::{BatError, Result};
use crate::value::Val;
use std::cmp::Ordering;

/// Comparison operators for `theta_select`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
}

impl CmpOp {
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Gt => ord == Ordering::Greater,
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }

    pub fn from_symbol(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            "=" | "==" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            ">=" => CmpOp::Ge,
            ">" => CmpOp::Gt,
            _ => return None,
        })
    }
}

fn incomparable(b: &Bat, v: &Val) -> BatError {
    BatError::TypeMismatch { expected: b.tail_type().name(), got: format!("{v:?}") }
}

/// `algebra.select(b, lo, hi)`: BUNs whose tail lies in `[lo, hi]`
/// (inclusive bounds, MonetDB's default).
pub fn select_range(b: &Bat, lo: &Val, hi: &Val) -> Result<Bat> {
    // Validate comparability on a non-empty column using the first row.
    if !b.is_empty() {
        if b.tail().cmp_val(0, lo).is_none() {
            return Err(incomparable(b, lo));
        }
        if b.tail().cmp_val(0, hi).is_none() {
            return Err(incomparable(b, hi));
        }
    }
    let tail = b.tail();
    let idx: Vec<usize> = (0..b.count())
        .filter(|&i| {
            let against_lo = tail.cmp_val(i, lo).unwrap_or(Ordering::Less);
            let against_hi = tail.cmp_val(i, hi).unwrap_or(Ordering::Greater);
            against_lo != Ordering::Less && against_hi != Ordering::Greater
        })
        .collect();
    Ok(gather_with_head(b, &idx))
}

/// `algebra.uselect(b, v)`: equality selection.
pub fn uselect(b: &Bat, v: &Val) -> Result<Bat> {
    theta_select(b, CmpOp::Eq, v)
}

/// `algebra.thetauselect(b, op, v)`: general comparison selection.
pub fn theta_select(b: &Bat, op: CmpOp, v: &Val) -> Result<Bat> {
    if !b.is_empty() && b.tail().cmp_val(0, v).is_none() {
        return Err(incomparable(b, v));
    }
    let tail = b.tail();
    let idx: Vec<usize> = (0..b.count())
        .filter(|&i| tail.cmp_val(i, v).map(|o| op.matches(o)).unwrap_or(false))
        .collect();
    Ok(gather_with_head(b, &idx))
}

fn gather_with_head(b: &Bat, idx: &[usize]) -> Bat {
    let head = b.head().gather(idx);
    let tail = b.tail().gather(idx);
    let props = Props {
        tail_sorted: b.props().tail_sorted || tail.is_sorted(),
        head_key: b.props().head_key,
        no_nil: true,
    };
    Bat::with_props(head, tail, props).expect("gather preserves alignment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn sample() -> Bat {
        Bat::dense(Column::from(vec![5, 1, 4, 1, 3]))
    }

    #[test]
    fn range_inclusive() {
        let r = select_range(&sample(), &Val::Int(1), &Val::Int(4)).unwrap();
        let tails: Vec<Val> = (0..r.count()).map(|i| r.bun(i).1).collect();
        assert_eq!(tails, vec![Val::Int(1), Val::Int(4), Val::Int(1), Val::Int(3)]);
        // Heads preserved: positions 1,2,3,4 of the original.
        assert_eq!(r.bun(0).0, Val::Oid(1));
    }

    #[test]
    fn uselect_equality() {
        let r = uselect(&sample(), &Val::Int(1)).unwrap();
        assert_eq!(r.count(), 2);
        assert_eq!(r.bun(0).0, Val::Oid(1));
        assert_eq!(r.bun(1).0, Val::Oid(3));
    }

    #[test]
    fn theta_all_ops() {
        let b = sample();
        let count = |op| theta_select(&b, op, &Val::Int(3)).unwrap().count();
        assert_eq!(count(CmpOp::Lt), 2);
        assert_eq!(count(CmpOp::Le), 3);
        assert_eq!(count(CmpOp::Eq), 1);
        assert_eq!(count(CmpOp::Ne), 4);
        assert_eq!(count(CmpOp::Ge), 3);
        assert_eq!(count(CmpOp::Gt), 2);
    }

    #[test]
    fn cross_numeric_constant() {
        // Int column selected with a Lng constant must coerce.
        let r = theta_select(&sample(), CmpOp::Ge, &Val::Lng(4)).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn type_mismatch_rejected() {
        assert!(uselect(&sample(), &Val::Str("x".into())).is_err());
    }

    #[test]
    fn empty_input_ok() {
        let e = Bat::empty(crate::value::ColType::Int);
        assert_eq!(uselect(&e, &Val::Int(1)).unwrap().count(), 0);
    }

    #[test]
    fn string_selection() {
        let b = Bat::dense(Column::from(vec!["de", "fr", "de", "nl"]));
        let r = uselect(&b, &Val::from("de")).unwrap();
        assert_eq!(r.count(), 2);
        let r = theta_select(&b, CmpOp::Gt, &Val::from("de")).unwrap();
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn op_symbols_round_trip() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ne, CmpOp::Ge, CmpOp::Gt] {
            assert_eq!(CmpOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(CmpOp::from_symbol("<>"), Some(CmpOp::Ne));
    }
}
