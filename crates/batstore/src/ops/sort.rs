//! Ordering operators: stable sort on the tail and top-N selection.

use crate::bat::{Bat, Props};
use crate::error::Result;

/// `algebra.sortTail(b)`: BUNs reordered so the tail is non-decreasing
/// (stable). `descending` flips the order.
pub fn sort_tail(b: &Bat, descending: bool) -> Bat {
    if !descending && b.props().tail_sorted {
        return b.clone();
    }
    let perm = b.tail().sort_perm(descending);
    let head = b.head().gather(&perm);
    let tail = b.tail().gather(&perm);
    let props = Props { tail_sorted: !descending, head_key: b.props().head_key, no_nil: true };
    Bat::with_props(head, tail, props).expect("permutation preserves length")
}

/// First `n` BUNs by tail order (ascending unless `descending`): the
/// `ORDER BY … LIMIT n` kernel. Uses a full sort; n is small in practice.
pub fn topn(b: &Bat, n: usize, descending: bool) -> Result<Bat> {
    let sorted = sort_tail(b, descending);
    Ok(sorted.slice(0, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::value::Val;

    #[test]
    fn sort_ascending_keeps_pairs() {
        let b = Bat::dense(Column::from(vec![3, 1, 2]));
        let s = sort_tail(&b, false);
        assert_eq!(s.bun(0), (Val::Oid(1), Val::Int(1)));
        assert_eq!(s.bun(1), (Val::Oid(2), Val::Int(2)));
        assert_eq!(s.bun(2), (Val::Oid(0), Val::Int(3)));
        assert!(s.props().tail_sorted);
    }

    #[test]
    fn sort_descending() {
        let b = Bat::dense(Column::from(vec![3, 1, 2]));
        let s = sort_tail(&b, true);
        let tails: Vec<Val> = (0..3).map(|i| s.bun(i).1).collect();
        assert_eq!(tails, vec![Val::Int(3), Val::Int(2), Val::Int(1)]);
    }

    #[test]
    fn already_sorted_short_circuit() {
        let b = Bat::dense(Column::from(vec![1, 2, 3]));
        let s = sort_tail(&b, false);
        assert_eq!(s, b);
    }

    #[test]
    fn topn_limits() {
        let b = Bat::dense(Column::from(vec![5, 3, 9, 1]));
        let t = topn(&b, 2, false).unwrap();
        assert_eq!(t.count(), 2);
        assert_eq!(t.bun(0).1, Val::Int(1));
        assert_eq!(t.bun(1).1, Val::Int(3));
        let t = topn(&b, 100, true).unwrap();
        assert_eq!(t.count(), 4, "n larger than input clamps");
        assert_eq!(t.bun(0).1, Val::Int(9));
    }

    #[test]
    fn sort_strings() {
        let b = Bat::dense(Column::from(vec!["pear", "apple"]));
        let s = sort_tail(&b, false);
        assert_eq!(s.bun(0).1, Val::Str("apple".into()));
    }
}
