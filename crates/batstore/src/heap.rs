//! The string heap: variable-width values live in one contiguous byte
//! buffer with an offsets array, MonetDB-style. This keeps string columns
//! cache-friendly and makes their serialized form a straight memory dump.

/// An append-only string column: `offs` has `len + 1` entries delimiting
/// each value's bytes in `bytes`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StrCol {
    offs: Vec<u32>,
    bytes: Vec<u8>,
}

impl StrCol {
    pub fn new() -> Self {
        StrCol { offs: vec![0], bytes: Vec::new() }
    }

    pub fn with_capacity(n: usize, byte_hint: usize) -> Self {
        let mut offs = Vec::with_capacity(n + 1);
        offs.push(0);
        StrCol { offs, bytes: Vec::with_capacity(byte_hint) }
    }

    pub fn len(&self) -> usize {
        self.offs.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        self.offs.push(self.bytes.len() as u32);
    }

    pub fn get(&self, i: usize) -> &str {
        let (lo, hi) = (self.offs[i] as usize, self.offs[i + 1] as usize);
        // Values only enter through `push(&str)`, so the bytes are UTF-8.
        unsafe { std::str::from_utf8_unchecked(&self.bytes[lo..hi]) }
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Bytes used by values + offsets (the BAT size accounting the ring
    /// protocols use).
    pub fn byte_size(&self) -> usize {
        self.bytes.len() + self.offs.len() * 4
    }

    /// Build a new column from selected indices of this one.
    pub fn gather(&self, idx: &[usize]) -> StrCol {
        let mut out = StrCol::with_capacity(idx.len(), idx.len() * 8);
        for &i in idx {
            out.push(self.get(i));
        }
        out
    }

    /// Raw parts for serialization.
    pub fn raw_parts(&self) -> (&[u32], &[u8]) {
        (&self.offs, &self.bytes)
    }

    /// Rebuild from serialized parts; validates structure and UTF-8.
    pub fn from_raw_parts(offs: Vec<u32>, bytes: Vec<u8>) -> Result<StrCol, String> {
        if offs.is_empty() || offs[0] != 0 {
            return Err("offsets must start with 0".into());
        }
        if !offs.windows(2).all(|w| w[0] <= w[1]) {
            return Err("offsets not monotonic".into());
        }
        if *offs.last().unwrap() as usize != bytes.len() {
            return Err("final offset does not match byte length".into());
        }
        std::str::from_utf8(&bytes).map_err(|e| format!("invalid utf8: {e}"))?;
        Ok(StrCol { offs, bytes })
    }
}

impl FromIterator<String> for StrCol {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut c = StrCol::new();
        for s in iter {
            c.push(&s);
        }
        c
    }
}

impl<'a> FromIterator<&'a str> for StrCol {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        let mut c = StrCol::new();
        for s in iter {
            c.push(s);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = StrCol::new();
        c.push("hello");
        c.push("");
        c.push("world");
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), "hello");
        assert_eq!(c.get(1), "");
        assert_eq!(c.get(2), "world");
    }

    #[test]
    fn iter_and_collect() {
        let c: StrCol = ["a", "bb", "ccc"].into_iter().collect();
        let v: Vec<&str> = c.iter().collect();
        assert_eq!(v, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn gather_selects() {
        let c: StrCol = ["x", "y", "z", "w"].into_iter().collect();
        let g = c.gather(&[3, 1]);
        assert_eq!(g.get(0), "w");
        assert_eq!(g.get(1), "y");
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn byte_size_counts_heap_and_offsets() {
        let c: StrCol = ["abcd"].into_iter().collect();
        assert_eq!(c.byte_size(), 4 + 2 * 4);
    }

    #[test]
    fn raw_round_trip() {
        let c: StrCol = ["one", "two"].into_iter().collect();
        let (offs, bytes) = c.raw_parts();
        let back = StrCol::from_raw_parts(offs.to_vec(), bytes.to_vec()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn from_raw_rejects_corrupt() {
        assert!(StrCol::from_raw_parts(vec![], vec![]).is_err());
        assert!(StrCol::from_raw_parts(vec![1, 0], vec![0]).is_err());
        assert!(StrCol::from_raw_parts(vec![0, 2], vec![1]).is_err());
        assert!(StrCol::from_raw_parts(vec![0, 1], vec![0xFF]).is_err());
    }

    #[test]
    fn unicode_safe() {
        let mut c = StrCol::new();
        c.push("héllo");
        c.push("日本語");
        assert_eq!(c.get(0), "héllo");
        assert_eq!(c.get(1), "日本語");
    }
}
