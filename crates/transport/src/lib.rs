//! # dc-transport — ring transports
//!
//! The paper's network layer "encapsulates the envisioned RDMA
//! infrastructure and traditional UDP/TCP functionality as a fall-back
//! solution" (§4). RDMA hardware is unavailable here, so this crate
//! provides the fall-back as a first-class citizen:
//!
//! * [`mem`] — an in-process ring over crossbeam channels (zero-copy
//!   `Arc` payloads), used by the live engine and tests,
//! * [`tcp`] — a real TCP ring with length-prefixed frames carrying the
//!   `datacyclotron::msg` codec, suitable for multi-process deployment
//!   on a LAN.
//!
//! Both expose the same shape: each node sends BATs clockwise to its
//! successor and requests anti-clockwise to its predecessor, and drains
//! one inbound stream of [`datacyclotron::DcMsg`].

pub mod mem;
pub mod tcp;

use datacyclotron::DcMsg;

/// A node's view of the ring fabric.
pub trait RingTransport: Send {
    /// Send a BAT message clockwise (to the successor).
    fn send_data(&self, msg: DcMsg) -> Result<(), TransportError>;
    /// Send a request anti-clockwise (to the predecessor).
    fn send_request(&self, msg: DcMsg) -> Result<(), TransportError>;
    /// Receive the next inbound message (blocking); `None` when the ring
    /// shut down.
    fn recv(&self) -> Option<DcMsg>;
    /// Bytes currently buffered toward the successor (the BAT queue load
    /// that LOIT adaptation observes).
    fn outbound_bytes(&self) -> u64;
}

#[derive(Debug)]
pub enum TransportError {
    /// The peer is gone; the ring must heal (pulsating rings, §6.3) or
    /// shut down.
    Disconnected,
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "ring peer disconnected"),
            TransportError::Io(e) => write!(f, "transport io: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}
