//! # dc-transport — ring transports
//!
//! The paper's network layer "encapsulates the envisioned RDMA
//! infrastructure and traditional UDP/TCP functionality as a fall-back
//! solution" (§4). RDMA hardware is unavailable here, so this crate
//! provides the fall-back as a first-class citizen:
//!
//! * [`mem`] — an in-process ring over crossbeam channels (refcounted
//!   `Bytes` payloads), used by the live engine and tests,
//! * [`tcp`] — a real TCP ring with length-prefixed frames carrying the
//!   `datacyclotron::msg` codec, suitable for multi-process deployment
//!   on a LAN.
//!
//! Both implement [`RingTransport`] (defined in `datacyclotron` so the
//! engine can consume it without a dependency cycle; re-exported here):
//! each node sends BATs clockwise to its successor and requests
//! anti-clockwise to its predecessor, and drains one inbound stream of
//! [`datacyclotron::DcMsg`].
//!
//! The crate also ships [`sqlserve`] — the server side of the
//! `dc-client` framed SQL protocol — and the `dc-node` binary: a
//! standalone ring-member process serving that protocol over TCP (see
//! `src/bin/dc_node.rs` and the README's "Distributed deployment"
//! section).

pub mod sqlserve;
pub mod tcp;

pub use datacyclotron::transport::{RingTransport, TransportError};

pub mod mem {
    //! In-process ring fabric (re-exported from
    //! [`datacyclotron::transport::mem`], where the live engine's default
    //! fast path lives).
    pub use datacyclotron::transport::mem::{ring, MemNode};
}
