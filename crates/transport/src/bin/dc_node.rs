//! `dc-node` — a standalone Data Cyclotron ring member.
//!
//! Each process joins the TCP ring by its neighbors' addresses, runs the
//! full engine (protocol state machine + SQL→MAL stack), and serves SQL
//! over the `dc-client` framed protocol: a versioned `Hello` handshake,
//! then any number of statements per connection, each answered with
//! typed column frames (`ResultHeader`/`RowBatch`/`Done`) or an `Error`
//! frame — so scripts and drivers can tell results from failures without
//! scraping text.
//!
//! ```sh
//! # A three-node ring on one machine (run each in its own terminal):
//! dc-node serve --ring 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 --me 0 --sql 127.0.0.1:7501
//! dc-node serve --ring 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 --me 1 --sql 127.0.0.1:7502
//! dc-node serve --ring 127.0.0.1:7401,127.0.0.1:7402,127.0.0.1:7403 --me 2 --sql 127.0.0.1:7503
//!
//! # Then talk SQL to any member; several statements share one connection:
//! dc-node query 127.0.0.1:7501 \
//!   "create table kv (k int, v varchar(16))" \
//!   "insert into kv values (1, 'hello'), (2, 'ring')"
//! dc-node query 127.0.0.1:7502 "select k, v from kv order by k"
//! ```
//!
//! A SQL error prints to stderr and exits non-zero. `--demo` preloads
//! the `sys.sales` demo table owned by this node. A statement of the
//! form `.wait <table>` blocks until the node's catalog replica knows
//! `sys.<table>` (useful when scripting against a freshly created table
//! from another node).
//!
//! `--data-dir <path>` makes the node durable: every CREATE/INSERT is
//! write-ahead logged and checkpointed there, and a killed process
//! restarted with the same flag recovers its catalog and fragments from
//! disk, rejoining the ring with its data intact. `--fsync
//! always|off|every=<n>` picks the WAL sync policy (default `always`).
//! `--mem-budget <bytes>` (requires `--data-dir`) caps resident owned
//! fragments: the coldest ones (lowest LOI) are spilled to the data dir
//! and re-admitted on demand when a query touches them again.

use batstore::Column;
use datacyclotron::{DataDir, DcConfig, FsyncPolicy, NodeId, NodeOptions, RingNode};
use dc_client::{Client, ClientError};
use dc_transport::sqlserve;
use dc_transport::tcp::join_ring;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dc-node serve --ring <a1,a2,…> --me <i> --sql <addr> [--demo] \
         [--data-dir <path>] [--fsync always|off|every=<n>] [--mem-budget <bytes>]\n  \
         dc-node query <addr> [--stats] <sql> [<sql>…]\n  \
         dc-node metrics <addr>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("metrics") => metrics(&args[1..]),
        _ => usage(),
    }
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad address '{s}': {e}");
        std::process::exit(2);
    })
}

fn parse_fsync(s: &str) -> FsyncPolicy {
    match s {
        "always" => FsyncPolicy::Always,
        "off" => FsyncPolicy::Off,
        other => match other.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
            Some(n) if n > 0 => FsyncPolicy::EveryN(n),
            _ => {
                eprintln!("bad --fsync '{s}': want always, off, or every=<n>");
                std::process::exit(2);
            }
        },
    }
}

fn serve(args: &[String]) -> ! {
    let mut ring = Vec::new();
    let mut me = None;
    let mut sql = None;
    let mut demo = false;
    let mut data_dir = None;
    let mut fsync = FsyncPolicy::Always;
    let mut mem_budget = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ring" => {
                let spec = it.next().unwrap_or_else(|| usage());
                ring = spec.split(',').map(parse_addr).collect();
            }
            "--me" => me = it.next().and_then(|s| s.parse::<usize>().ok()),
            "--sql" => sql = it.next().map(|s| parse_addr(s)),
            "--demo" => demo = true,
            "--data-dir" => data_dir = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--fsync" => fsync = parse_fsync(it.next().unwrap_or_else(|| usage())),
            "--mem-budget" => {
                mem_budget = it.next().and_then(|s| s.parse::<u64>().ok());
                if mem_budget.is_none() {
                    eprintln!("bad --mem-budget: want a byte count");
                    std::process::exit(2);
                }
            }
            _ => usage(),
        }
    }
    let (Some(me), Some(sql)) = (me, sql) else { usage() };
    if ring.len() < 2 || me >= ring.len() {
        usage();
    }
    if mem_budget.is_some() && data_dir.is_none() {
        eprintln!("--mem-budget requires --data-dir (spilled fragments need an at-rest home)");
        std::process::exit(2);
    }

    eprintln!("[dc-node {me}] joining ring {ring:?}");
    let transport = Arc::new(join_ring(&ring, me).unwrap_or_else(|e| {
        eprintln!("[dc-node {me}] failed to join ring: {e}");
        std::process::exit(1);
    }));
    let opts = NodeOptions {
        cfg: DcConfig {
            load_interval: netsim::SimDuration::from_millis(10),
            resend_timeout: netsim::SimDuration::from_millis(500),
            // Snappy owner-side loss detection: a BAT forwarded into a
            // dead neighbor's socket must revert to disk quickly so
            // requesters behind a healed ring are served again.
            lost_after: netsim::SimDuration::from_secs(2),
            ..DcConfig::default()
        },
        pin_timeout: Duration::from_secs(20),
        data_dir: data_dir.map(|p| DataDir::new(p).fsync(fsync)),
        mem_budget,
        ..NodeOptions::default()
    };
    let node = RingNode::try_spawn(NodeId(me as u16), transport, opts).unwrap_or_else(|e| {
        eprintln!("[dc-node {me}] startup failed: {e}");
        std::process::exit(1);
    });

    if demo {
        node.load_table(
            "sys",
            "sales",
            vec![
                ("k", Column::from((0..100).collect::<Vec<i32>>())),
                (
                    "amount",
                    Column::from((0..100).map(|i| (i * 37 + 11) % 500).collect::<Vec<i32>>()),
                ),
            ],
        )
        .expect("load demo table");
        eprintln!("[dc-node {me}] demo table sys.sales loaded (owned here)");
    }

    let listener = TcpListener::bind(sql).unwrap_or_else(|e| {
        eprintln!("[dc-node {me}] cannot bind SQL address {sql}: {e}");
        std::process::exit(1);
    });
    // The smoke scripts grep for this marker.
    println!("dc-node {me} ready: sql on {sql}");

    // One thread per connection; each connection serves any number of
    // statements through the framed protocol.
    sqlserve::serve_sql(listener, Arc::new(node));
}

fn query(args: &[String]) -> ! {
    let Some(addr) = args.first() else { usage() };
    let mut stats = false;
    let stmts: Vec<&String> = args[1..]
        .iter()
        .filter(|a| {
            if a.as_str() == "--stats" {
                stats = true;
                false
            } else {
                true
            }
        })
        .collect();
    if stmts.is_empty() {
        usage();
    }
    let addr = parse_addr(addr);
    let mut session = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    // All statements share this one connection; the first failure stops
    // the run with a non-zero exit so scripts can detect it.
    for sql in stmts {
        match session.query(sql) {
            Ok(rs) => print!("{}", rs.render()),
            Err(e @ ClientError::Server { .. }) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    // `--stats`: after the last statement, dump the serving node's
    // counters and latency percentiles over the same connection.
    if stats {
        match session.query(".metrics") {
            Ok(rs) => print!("{}", rs.render()),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

/// One-shot scrape: connect, ask the node for its metrics dump, print
/// the Prometheus-style `name value` text, exit.
fn metrics(args: &[String]) -> ! {
    let (Some(addr), true) = (args.first(), args.len() == 1) else { usage() };
    let addr = parse_addr(addr);
    let mut session = Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    match session.query(".metrics") {
        Ok(rs) => {
            print!("{}", rs.render());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
