//! In-process ring fabric over crossbeam channels.

use crate::{RingTransport, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use datacyclotron::DcMsg;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One node's endpoints.
pub struct MemNode {
    data_tx: Sender<DcMsg>,
    req_tx: Sender<DcMsg>,
    rx: Receiver<DcMsg>,
    /// Shared with the successor: bytes we have queued toward it.
    out_bytes: Arc<AtomicU64>,
    /// Shared with the predecessor: bytes it queued toward us (we
    /// decrement on receive).
    in_bytes: Arc<AtomicU64>,
}

/// Build a fully-wired in-process ring of `n` nodes.
pub fn ring(n: usize) -> Vec<MemNode> {
    assert!(n >= 2, "a ring needs at least two nodes");
    let channels: Vec<(Sender<DcMsg>, Receiver<DcMsg>)> = (0..n).map(|_| unbounded()).collect();
    let counters: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    (0..n)
        .map(|i| {
            let succ = (i + 1) % n;
            let pred = (i + n - 1) % n;
            MemNode {
                data_tx: channels[succ].0.clone(),
                req_tx: channels[pred].0.clone(),
                rx: channels[i].1.clone(),
                out_bytes: Arc::clone(&counters[i]),
                in_bytes: Arc::clone(&counters[pred]),
            }
        })
        .collect()
}

impl RingTransport for MemNode {
    fn send_data(&self, msg: DcMsg) -> Result<(), TransportError> {
        self.out_bytes.fetch_add(msg.wire_size(), Ordering::Relaxed);
        self.data_tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn send_request(&self, msg: DcMsg) -> Result<(), TransportError> {
        self.req_tx.send(msg).map_err(|_| TransportError::Disconnected)
    }

    fn recv(&self) -> Option<DcMsg> {
        let msg = self.rx.recv().ok()?;
        if matches!(msg, DcMsg::Bat { .. }) {
            self.in_bytes.fetch_sub(msg.wire_size(), Ordering::Relaxed);
        }
        Some(msg)
    }

    fn outbound_bytes(&self) -> u64 {
        self.out_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacyclotron::msg::BatHeader;
    use datacyclotron::{BatId, NodeId, ReqMsg};

    fn bat_msg(id: u32, size: u64) -> DcMsg {
        DcMsg::Bat { header: BatHeader::fresh(NodeId(0), BatId(id), size), payload: None }
    }

    #[test]
    fn data_flows_clockwise() {
        let nodes = ring(3);
        nodes[0].send_data(bat_msg(1, 100)).unwrap();
        match nodes[1].recv().unwrap() {
            DcMsg::Bat { header, .. } => assert_eq!(header.bat, BatId(1)),
            other => panic!("{other:?}"),
        }
        nodes[1].send_data(bat_msg(1, 100)).unwrap();
        assert!(matches!(nodes[2].recv().unwrap(), DcMsg::Bat { .. }));
        nodes[2].send_data(bat_msg(1, 100)).unwrap();
        assert!(matches!(nodes[0].recv().unwrap(), DcMsg::Bat { .. }), "wraps around");
    }

    #[test]
    fn requests_flow_anticlockwise() {
        let nodes = ring(3);
        nodes[0].send_request(DcMsg::Request(ReqMsg { origin: NodeId(0), bat: BatId(9) })).unwrap();
        match nodes[2].recv().unwrap() {
            DcMsg::Request(r) => assert_eq!(r.bat, BatId(9)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outbound_bytes_tracks_queue() {
        let nodes = ring(2);
        assert_eq!(nodes[0].outbound_bytes(), 0);
        nodes[0].send_data(bat_msg(1, 1000)).unwrap();
        let queued = nodes[0].outbound_bytes();
        assert!(queued >= 1000, "queued={queued}");
        let _ = nodes[1].recv().unwrap();
        assert_eq!(nodes[0].outbound_bytes(), 0, "drained on receive");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_degenerate_ring() {
        let _ = ring(1);
    }
}
