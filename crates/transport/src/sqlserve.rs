//! The server side of the `dc-client` framed SQL protocol: accept
//! connections on a listener, shake hands, and answer any number of
//! `Query` frames per connection against a local [`RingNode`].
//!
//! This is the front door the paper's premise requires — "queries settle
//! on any node" (§4.2) — exposed as a library so the `dc-node` binary,
//! the examples, and the distributed tests all serve the identical
//! protocol. Results leave as typed column frames
//! ([`dc_client::proto::result_frames`]); text rendering happens only in
//! clients that want text.

use datacyclotron::{DcError, RingNode};
use dc_client::proto::{
    read_frame, write_frame, ErrorKind, Frame, DEFAULT_BATCH_ROWS, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A [`TcpStream`] that feeds every byte moved in either direction into
/// the node's observability counters, so `dc.stats` shows the SQL front
/// door's traffic next to the ring fabric's.
struct MeteredConn {
    inner: TcpStream,
    bytes_in: Arc<dc_obs::Counter>,
    bytes_out: Arc<dc_obs::Counter>,
}

impl Read for MeteredConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in.add(n as u64);
        Ok(n)
    }
}

impl Write for MeteredConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Decrements the active-session gauge when a connection thread exits,
/// however it exits.
struct SessionGuard(Arc<dc_obs::Gauge>);

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// How long a fresh connection may dawdle before its `Hello` arrives.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// Idle cap between statements on an established session. Generous —
/// sessions are long-lived by design — but bounded, so an abandoned
/// connection cannot hold its thread forever.
const IDLE_TIMEOUT: Duration = Duration::from_secs(300);

/// Serve the framed SQL protocol on `listener` forever, one thread per
/// connection. Never returns; run it on a dedicated thread (see
/// [`spawn_sql_server`]).
pub fn serve_sql(listener: TcpListener, node: Arc<RingNode>) -> ! {
    loop {
        let Ok((conn, _)) = listener.accept() else {
            std::thread::sleep(Duration::from_millis(100));
            continue;
        };
        let node = Arc::clone(&node);
        std::thread::spawn(move || {
            let _ = handle_conn(conn, &node);
        });
    }
}

/// Spawn [`serve_sql`] on a background thread and return its handle.
/// The thread lives until the process exits (the listener has no
/// shutdown protocol; tests simply drop off its end).
pub fn spawn_sql_server(listener: TcpListener, node: Arc<RingNode>) -> JoinHandle<()> {
    std::thread::spawn(move || serve_sql(listener, node))
}

/// Drive one client connection: validate the `Hello`, then answer
/// `Query` frames until the peer disconnects or times out idle.
pub fn handle_conn(conn: TcpStream, node: &RingNode) -> io::Result<()> {
    conn.set_nodelay(true).ok();
    conn.set_read_timeout(Some(HELLO_TIMEOUT)).ok();
    let obs = node.obs();
    let sessions = obs.gauge("sql_sessions_active");
    sessions.inc();
    let _guard = SessionGuard(Arc::clone(&sessions));
    let mut conn = MeteredConn {
        inner: conn,
        bytes_in: obs.counter("sql_frame_bytes_in"),
        bytes_out: obs.counter("sql_frame_bytes_out"),
    };
    match read_frame(&mut conn, DEFAULT_MAX_FRAME)? {
        Some(Frame::Hello { version: PROTOCOL_VERSION }) => {
            write_frame(&mut conn, &Frame::Hello { version: PROTOCOL_VERSION })?;
        }
        Some(Frame::Hello { version }) => {
            // Answer with our version so a newer client can say *why*
            // the handshake failed, then hang up.
            let _ = write_frame(&mut conn, &Frame::Hello { version: PROTOCOL_VERSION });
            let _ = write_frame(
                &mut conn,
                &Frame::Error {
                    kind: ErrorKind::Protocol,
                    message: format!(
                        "unsupported protocol v{version} (server speaks v{PROTOCOL_VERSION})"
                    ),
                },
            );
            return Ok(());
        }
        _ => return Ok(()), // not a protocol client; drop silently
    }

    conn.inner.set_read_timeout(Some(IDLE_TIMEOUT)).ok();
    while let Some(frame) = read_frame(&mut conn, DEFAULT_MAX_FRAME)? {
        let Frame::Query { sql } = frame else {
            write_frame(
                &mut conn,
                &Frame::Error {
                    kind: ErrorKind::Protocol,
                    message: "expected a Query frame".into(),
                },
            )?;
            continue;
        };
        let stmt = sql.trim();
        // `.wait <table>` blocks until catalog gossip for a freshly
        // created table reaches this node (scripting aid).
        let reply = if let Some(table) = stmt.strip_prefix(".wait ") {
            let table = table.trim();
            node.wait_for_table_timeout("sys", table, Duration::from_secs(10))
                .map(|()| datacyclotron::ResultSet::with_info("ok\n"))
                .map_err(|e| (ErrorKind::Ring, e.to_string()))
        } else if stmt == ".metrics" {
            // One-shot Prometheus-style `name value` dump of every node
            // counter, gauge, and histogram (scraped by `dc-node metrics`).
            node.metrics_text()
                .map(datacyclotron::ResultSet::with_info)
                .map_err(|e| (ErrorKind::Ring, e.to_string()))
        } else {
            node.execute(stmt).map_err(|e| (error_kind(&e), e.to_string()))
        };
        match reply {
            Ok(rs) => {
                for f in dc_client::proto::result_frames(&rs, DEFAULT_BATCH_ROWS) {
                    write_frame(&mut conn, &f)?;
                }
            }
            // An Error frame ends the statement, not the session. The
            // engine's classification rides along so clients can branch
            // (retry Ring failures, reject Parse ones) without scraping
            // the message.
            Err((kind, message)) => write_frame(&mut conn, &Frame::Error { kind, message })?,
        }
    }
    Ok(())
}

/// The engine's error classification as the wire carries it.
fn error_kind(e: &DcError) -> ErrorKind {
    match e {
        DcError::Parse(_) => ErrorKind::Parse,
        DcError::Plan(_) => ErrorKind::Plan,
        DcError::Exec(_) => ErrorKind::Exec,
        DcError::Ring(_) => ErrorKind::Ring,
    }
}
