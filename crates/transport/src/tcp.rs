//! TCP ring fabric: length-prefixed frames over two neighbor sockets.
//!
//! Wire format per frame: `u32` little-endian payload length, then the
//! `datacyclotron::msg` binary encoding. TCP gives the "asynchronous
//! channels with guaranteed order of arrival" the paper requires of its
//! network layer (§4.3).
//!
//! The ring *heals*: each node keeps its listener open for its whole
//! lifetime, replacing an inbound neighbor stream whenever a new one
//! arrives, and a failed outbound write triggers one redial of the
//! neighbor's well-known address. A SIGKILL'd member that restarts (see
//! `dc-persist` recovery) therefore rejoins the very same ring — its
//! neighbors reconnect on their next send, and messages lost during the
//! outage are recovered by the protocol's own `resend` and lost-BAT
//! machinery (§4.2.3).

use crate::{RingTransport, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use datacyclotron::{decode, encode, DcMsg};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default cap on a single frame (64 MiB). A corrupt or malicious peer
/// can claim any length in the prefix; the cap bounds what we are
/// willing to read, and [`read_frame_capped`] never allocates the
/// claimed length up front — the buffer grows only as bytes arrive.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Write one frame.
pub fn write_frame(stream: &mut impl Write, msg: &DcMsg) -> std::io::Result<()> {
    let bytes = encode(msg);
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Read one frame with the [`DEFAULT_MAX_FRAME`] cap; `Ok(None)` on
/// clean EOF (connection closed between frames).
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<DcMsg>> {
    read_frame_capped(stream, DEFAULT_MAX_FRAME)
}

/// Read one frame, rejecting lengths above `max_frame`.
///
/// EOF handling distinguishes the two cases a peer shutdown can produce:
/// zero bytes before the length prefix is a clean close (`Ok(None)`);
/// EOF *inside* the prefix or the payload is a truncated frame and
/// surfaces as an error.
pub fn read_frame_capped(
    stream: &mut impl Read,
    max_frame: usize,
) -> std::io::Result<Option<DcMsg>> {
    let mut len_buf = [0u8; 4];
    // The first byte decides clean-close vs truncation.
    match stream.read_exact(&mut len_buf[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    stream.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    // `take` + `read_to_end` grows the buffer geometrically as data
    // actually arrives: an untrusted length never turns into an upfront
    // allocation.
    let mut buf = Vec::new();
    stream.take(len as u64).read_to_end(&mut buf)?;
    if buf.len() < len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("truncated frame: want {len} bytes, got {}", buf.len()),
        ));
    }
    decode(&buf).map(Some).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// How long a send-path redial waits for one TCP connect. A refused
/// connection (dead or restarting peer) fails in microseconds on a LAN;
/// the cap only bounds black-hole routes.
const REDIAL_TIMEOUT: Duration = Duration::from_secs(1);

/// A node connected into a TCP ring.
pub struct TcpNode {
    /// My position and the ring's well-known addresses, kept for
    /// redialing neighbors after a failure.
    addrs: Vec<SocketAddr>,
    me: usize,
    data_out: Mutex<Option<TcpStream>>,
    req_out: Mutex<Option<TcpStream>>,
    inbox: Receiver<DcMsg>,
    out_bytes: Arc<AtomicU64>,
    closed: Arc<AtomicBool>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    // The current inbound stream per edge (data, requests): `close` can
    // force the reader threads off their blocking reads without waiting
    // for peers, and a replaced stream is dropped — a flapping neighbor
    // must not accumulate descriptors.
    inbound: Arc<Mutex<[Option<TcpStream>; 2]>>,
}

/// Establish a full TCP ring on the given addresses with the default
/// frame cap; `me` is this process's position. Every participant must
/// call this concurrently (each listens on `addrs[me]` and dials its two
/// neighbors).
///
/// Connection protocol: each node accepts exactly two inbound
/// connections — one from its predecessor (data) and one from its
/// successor (requests) — distinguished by a 1-byte hello (`b'D'` /
/// `b'R'`).
///
/// ```
/// use datacyclotron::{BatId, DcMsg, NodeId, ReqMsg};
/// use dc_transport::tcp::join_ring;
/// use dc_transport::RingTransport;
/// use std::net::TcpListener;
///
/// // Reserve two free local ports, then join from two threads.
/// let ports: Vec<_> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
/// let addrs: Vec<_> = ports.iter().map(|l| l.local_addr().unwrap()).collect();
/// drop(ports);
/// let addrs2 = addrs.clone();
/// let peer = std::thread::spawn(move || join_ring(&addrs2, 1).unwrap());
/// let n0 = join_ring(&addrs, 0).unwrap();
/// let n1 = peer.join().unwrap();
///
/// n0.send_request(DcMsg::Request(ReqMsg { origin: NodeId(0), bat: BatId(7) })).unwrap();
/// assert!(matches!(n1.recv(), Some(DcMsg::Request(r)) if r.bat == BatId(7)));
/// n0.close();
/// n1.close();
/// ```
pub fn join_ring(addrs: &[SocketAddr], me: usize) -> Result<TcpNode, TransportError> {
    join_ring_capped(addrs, me, DEFAULT_MAX_FRAME)
}

/// [`join_ring`] with an explicit per-frame byte cap for the inbound
/// streams.
///
/// Returns once the listener is up and both outbound neighbor dials
/// succeeded; the two inbound streams attach through the long-lived
/// acceptor whenever the neighbors' own dials arrive (TCP's backlog
/// queues them meanwhile, so nothing is lost).
pub fn join_ring_capped(
    addrs: &[SocketAddr],
    me: usize,
    max_frame: usize,
) -> Result<TcpNode, TransportError> {
    assert!(addrs.len() >= 2, "a ring needs at least two nodes");
    assert!(me < addrs.len());
    let n = addrs.len();
    let succ = addrs[(me + 1) % n];
    let pred = addrs[(me + n - 1) % n];

    let listener = TcpListener::bind(addrs[me])?;

    let (tx, inbox) = unbounded::<DcMsg>();
    let out_bytes = Arc::new(AtomicU64::new(0));
    let closed = Arc::new(AtomicBool::new(false));
    let readers = Arc::new(Mutex::new(Vec::new()));
    let inbound = Arc::new(Mutex::new([None, None]));
    let acceptor = {
        let (closed, readers, inbound) =
            (Arc::clone(&closed), Arc::clone(&readers), Arc::clone(&inbound));
        std::thread::spawn(move || accept_loop(listener, tx, closed, readers, inbound, max_frame))
    };

    // Dial both neighbors with retry: peers may not be listening yet.
    let dial = |addr: SocketAddr, hello: u8| -> Result<TcpStream, TransportError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut s) => {
                    s.set_nodelay(true).ok();
                    s.write_all(&[hello])?;
                    return Ok(s);
                }
                Err(e) => {
                    if std::time::Instant::now() > deadline {
                        return Err(TransportError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    let data_out = dial(succ, b'D')?;
    let req_out = dial(pred, b'R')?;

    Ok(TcpNode {
        addrs: addrs.to_vec(),
        me,
        data_out: Mutex::new(Some(data_out)),
        req_out: Mutex::new(Some(req_out)),
        inbox,
        out_bytes,
        closed,
        acceptor: Mutex::new(Some(acceptor)),
        readers,
        inbound,
    })
}

/// The node's long-lived acceptor: every inbound connection identifies
/// its edge with a 1-byte hello (`b'D'` from the predecessor's data
/// dial, `b'R'` from the successor's request dial) and *replaces* the
/// current stream on that edge — which is how a restarted or reconnecting
/// neighbor re-attaches mid-flight.
fn accept_loop(
    listener: TcpListener,
    tx: Sender<DcMsg>,
    closed: Arc<AtomicBool>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    inbound: Arc<Mutex<[Option<TcpStream>; 2]>>,
    max_frame: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                if closed.load(Ordering::Acquire) {
                    return;
                }
                // Persistent failures (EMFILE and friends) must not spin
                // a core; back off and retry.
                eprintln!("[dc-transport] accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
        };
        if closed.load(Ordering::Acquire) {
            return;
        }
        let mut stream = stream;
        stream.set_nodelay(true).ok();
        // The hello must arrive promptly or the conn is junk (including
        // the wake-up probe `close` sends to unblock this loop).
        stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
        let mut hello = [0u8; 1];
        if stream.read_exact(&mut hello).is_err() {
            continue;
        }
        stream.set_read_timeout(None).ok();
        let slot = match hello[0] {
            b'D' => 0,
            b'R' => 1,
            _ => continue,
        };
        let Ok(clone) = stream.try_clone() else { continue };
        // The new stream takes over the edge; the replaced one is shut
        // (its reader exits) and dropped — reconnects must not leak
        // descriptors, threads, or registry slots.
        if let Some(old) = inbound.lock()[slot].replace(clone) {
            let _ = old.shutdown(std::net::Shutdown::Both);
        }
        let tx = tx.clone();
        let mut r = readers.lock();
        r.retain(|h| !h.is_finished());
        r.push(std::thread::spawn(move || {
            while let Ok(Some(msg)) = read_frame_capped(&mut stream, max_frame) {
                if tx.send(msg).is_err() {
                    break;
                }
            }
        }));
    }
}

impl TcpNode {
    /// Write on an edge, redialing the neighbor's well-known address once
    /// if the current stream is dead or missing. Persistent failure is
    /// returned to the caller — the ring protocol's `resend` machinery
    /// (§4.2.3) is the retry loop, not the transport.
    fn send_edge(
        &self,
        out: &Mutex<Option<TcpStream>>,
        peer: SocketAddr,
        hello: u8,
        msg: &DcMsg,
    ) -> Result<(), TransportError> {
        let mut guard = out.lock();
        if let Some(s) = guard.as_mut() {
            if write_frame(s, msg).is_ok() {
                return Ok(());
            }
        }
        *guard = None;
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Disconnected);
        }
        let mut fresh = TcpStream::connect_timeout(&peer, REDIAL_TIMEOUT)?;
        fresh.set_nodelay(true).ok();
        fresh.write_all(&[hello])?;
        write_frame(&mut fresh, msg)?;
        *guard = Some(fresh);
        Ok(())
    }

    fn succ(&self) -> SocketAddr {
        self.addrs[(self.me + 1) % self.addrs.len()]
    }

    fn pred(&self) -> SocketAddr {
        self.addrs[(self.me + self.addrs.len() - 1) % self.addrs.len()]
    }
}

impl RingTransport for TcpNode {
    fn send_data(&self, msg: DcMsg) -> Result<(), TransportError> {
        let size = msg.wire_size();
        self.out_bytes.fetch_add(size, Ordering::Relaxed);
        let result = self.send_edge(&self.data_out, self.succ(), b'D', &msg);
        self.out_bytes.fetch_sub(size, Ordering::Relaxed);
        result
    }

    fn send_request(&self, msg: DcMsg) -> Result<(), TransportError> {
        self.send_edge(&self.req_out, self.pred(), b'R', &msg)
    }

    fn recv(&self) -> Option<DcMsg> {
        self.inbox.recv().ok()
    }

    fn outbound_bytes(&self) -> u64 {
        self.out_bytes.load(Ordering::Relaxed)
    }

    /// Tear down the node: shut both outgoing streams, force every
    /// inbound stream shut so the reader threads leave their blocking
    /// reads immediately, wake and join the acceptor, then join the
    /// readers. Safe to call in any order across ring members — no peer
    /// coordination is required — and idempotent.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for out in [&self.data_out, &self.req_out] {
            if let Some(mut guard) = out.try_lock() {
                if let Some(s) = guard.take() {
                    let _ = s.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        // A throwaway connection unblocks the acceptor's `accept`; it
        // sees the closed flag and exits. Joining it first means the
        // inbound registry below is final.
        let _ = TcpStream::connect_timeout(&self.addrs[self.me], Duration::from_millis(200));
        if let Some(a) = self.acceptor.lock().take() {
            let _ = a.join();
        }
        for s in self.inbound.lock().iter_mut() {
            if let Some(s) = s.take() {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        for r in self.readers.lock().drain(..) {
            let _ = r.join();
        }
    }
}

impl TcpNode {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DcMsg> {
        self.inbox.try_recv().ok()
    }

    /// Consuming alias of [`RingTransport::close`].
    pub fn shutdown(self) {
        self.close();
    }
}

/// Sender side used by tests/tools to speak the frame protocol directly.
pub fn sender_of(tx: &Sender<DcMsg>) -> Sender<DcMsg> {
    tx.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use datacyclotron::msg::BatHeader;
    use datacyclotron::{BatId, NodeId, ReqMsg};

    fn local_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct free ports.
        let temp: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        temp.iter().map(|l| l.local_addr().unwrap()).collect()
    }

    #[test]
    fn frame_round_trip() {
        let msg = DcMsg::Bat {
            header: BatHeader::fresh(NodeId(1), BatId(7), 3),
            payload: Some(Bytes::from_static(b"abc")),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(back, msg);
        // Clean EOF → None.
        assert!(read_frame(&mut &b""[..]).unwrap().is_none());
    }

    #[test]
    fn corrupt_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&[99, 0, 0, 0, 0]);
        assert!(read_frame(&mut &buf[..]).is_err());
        // Oversized length header.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn three_node_tcp_ring_routes_both_directions() {
        let addrs = local_addrs(3);
        let mut joins = Vec::new();
        for me in 0..3 {
            let addrs = addrs.clone();
            joins.push(std::thread::spawn(move || join_ring(&addrs, me).unwrap()));
        }
        let nodes: Vec<TcpNode> = joins.into_iter().map(|j| j.join().unwrap()).collect();

        // Data clockwise: 0 → 1.
        nodes[0]
            .send_data(DcMsg::Bat {
                header: BatHeader::fresh(NodeId(0), BatId(42), 4),
                payload: Some(Bytes::from_static(b"data")),
            })
            .unwrap();
        match nodes[1].recv().unwrap() {
            DcMsg::Bat { header, payload } => {
                assert_eq!(header.bat, BatId(42));
                assert_eq!(payload.unwrap(), Bytes::from_static(b"data"));
            }
            other => panic!("{other:?}"),
        }

        // Requests anti-clockwise: 0 → 2.
        nodes[0].send_request(DcMsg::Request(ReqMsg { origin: NodeId(0), bat: BatId(5) })).unwrap();
        match nodes[2].recv().unwrap() {
            DcMsg::Request(r) => assert_eq!(r.origin, NodeId(0)),
            other => panic!("{other:?}"),
        }

        // Full circulation: a BAT completes the ring.
        for hop in 0..3 {
            let from = hop;
            nodes[from]
                .send_data(DcMsg::Bat {
                    header: BatHeader::fresh(NodeId(9), BatId(9), 0),
                    payload: None,
                })
                .unwrap();
            let to = (hop + 1) % 3;
            assert!(matches!(nodes[to].recv().unwrap(), DcMsg::Bat { .. }));
        }
        for n in nodes {
            n.shutdown();
        }
    }

    #[test]
    fn ring_heals_after_member_restart() {
        let addrs = local_addrs(3);
        let mut joins = Vec::new();
        for me in 0..3 {
            let addrs = addrs.clone();
            joins.push(std::thread::spawn(move || join_ring(&addrs, me).unwrap()));
        }
        let mut nodes: Vec<Option<TcpNode>> =
            joins.into_iter().map(|j| Some(j.join().unwrap())).collect();

        // Node 1 dies (close is the orderly stand-in for a kill: its
        // listener and sockets vanish either way).
        nodes[1].take().unwrap().shutdown();
        std::thread::sleep(Duration::from_millis(50));

        // ... and restarts at the same address.
        let revived = join_ring(&addrs, 1).unwrap();

        // Node 0's outbound data stream points at the dead socket; the
        // first write may land in a buffer that RSTs, after which the
        // send path redials the well-known address. Keep sending until
        // delivery proves the ring healed.
        let mut healed = false;
        for _ in 0..100 {
            let _ = nodes[0].as_ref().unwrap().send_data(DcMsg::Bat {
                header: BatHeader::fresh(NodeId(0), BatId(1), 0),
                payload: None,
            });
            std::thread::sleep(Duration::from_millis(20));
            if revived.try_recv().is_some() {
                healed = true;
                break;
            }
        }
        assert!(healed, "data edge 0→1 never healed");

        // The anti-clockwise edge 2→1 heals the same way.
        let mut healed = false;
        for _ in 0..100 {
            let _ = nodes[2]
                .as_ref()
                .unwrap()
                .send_request(DcMsg::Request(ReqMsg { origin: NodeId(2), bat: BatId(5) }));
            std::thread::sleep(Duration::from_millis(20));
            if revived.try_recv().is_some() {
                healed = true;
                break;
            }
        }
        assert!(healed, "request edge 2→1 never healed");

        revived.shutdown();
        for n in nodes.into_iter().flatten() {
            n.shutdown();
        }
    }
}
