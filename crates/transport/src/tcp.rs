//! TCP ring fabric: length-prefixed frames over two neighbor sockets.
//!
//! Wire format per frame: `u32` little-endian payload length, then the
//! `datacyclotron::msg` binary encoding. TCP gives the "asynchronous
//! channels with guaranteed order of arrival" the paper requires of its
//! network layer (§4.3).

use crate::{RingTransport, TransportError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use datacyclotron::{decode, encode, DcMsg};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default cap on a single frame (64 MiB). A corrupt or malicious peer
/// can claim any length in the prefix; the cap bounds what we are
/// willing to read, and [`read_frame_capped`] never allocates the
/// claimed length up front — the buffer grows only as bytes arrive.
pub const DEFAULT_MAX_FRAME: usize = 64 << 20;

/// Write one frame.
pub fn write_frame(stream: &mut impl Write, msg: &DcMsg) -> std::io::Result<()> {
    let bytes = encode(msg);
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Read one frame with the [`DEFAULT_MAX_FRAME`] cap; `Ok(None)` on
/// clean EOF (connection closed between frames).
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<DcMsg>> {
    read_frame_capped(stream, DEFAULT_MAX_FRAME)
}

/// Read one frame, rejecting lengths above `max_frame`.
///
/// EOF handling distinguishes the two cases a peer shutdown can produce:
/// zero bytes before the length prefix is a clean close (`Ok(None)`);
/// EOF *inside* the prefix or the payload is a truncated frame and
/// surfaces as an error.
pub fn read_frame_capped(
    stream: &mut impl Read,
    max_frame: usize,
) -> std::io::Result<Option<DcMsg>> {
    let mut len_buf = [0u8; 4];
    // The first byte decides clean-close vs truncation.
    match stream.read_exact(&mut len_buf[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    stream.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_frame}-byte cap"),
        ));
    }
    // `take` + `read_to_end` grows the buffer geometrically as data
    // actually arrives: an untrusted length never turns into an upfront
    // allocation.
    let mut buf = Vec::new();
    stream.take(len as u64).read_to_end(&mut buf)?;
    if buf.len() < len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            format!("truncated frame: want {len} bytes, got {}", buf.len()),
        ));
    }
    decode(&buf).map(Some).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// A node connected into a TCP ring.
pub struct TcpNode {
    data_out: Mutex<TcpStream>,
    req_out: Mutex<TcpStream>,
    inbox: Receiver<DcMsg>,
    out_bytes: Arc<AtomicU64>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    // Clones of the inbound streams so `close` can force the reader
    // threads off their blocking reads without waiting for peers.
    inbound: Vec<TcpStream>,
}

/// Establish a full TCP ring on the given addresses with the default
/// frame cap; `me` is this process's position. Every participant must
/// call this concurrently (each listens on `addrs[me]` and dials its two
/// neighbors).
///
/// Connection protocol: each node accepts exactly two inbound
/// connections — one from its predecessor (data) and one from its
/// successor (requests) — distinguished by a 1-byte hello (`b'D'` /
/// `b'R'`).
///
/// ```
/// use datacyclotron::{BatId, DcMsg, NodeId, ReqMsg};
/// use dc_transport::tcp::join_ring;
/// use dc_transport::RingTransport;
/// use std::net::TcpListener;
///
/// // Reserve two free local ports, then join from two threads.
/// let ports: Vec<_> = (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
/// let addrs: Vec<_> = ports.iter().map(|l| l.local_addr().unwrap()).collect();
/// drop(ports);
/// let addrs2 = addrs.clone();
/// let peer = std::thread::spawn(move || join_ring(&addrs2, 1).unwrap());
/// let n0 = join_ring(&addrs, 0).unwrap();
/// let n1 = peer.join().unwrap();
///
/// n0.send_request(DcMsg::Request(ReqMsg { origin: NodeId(0), bat: BatId(7) })).unwrap();
/// assert!(matches!(n1.recv(), Some(DcMsg::Request(r)) if r.bat == BatId(7)));
/// n0.close();
/// n1.close();
/// ```
pub fn join_ring(addrs: &[SocketAddr], me: usize) -> Result<TcpNode, TransportError> {
    join_ring_capped(addrs, me, DEFAULT_MAX_FRAME)
}

/// [`join_ring`] with an explicit per-frame byte cap for the two inbound
/// streams.
pub fn join_ring_capped(
    addrs: &[SocketAddr],
    me: usize,
    max_frame: usize,
) -> Result<TcpNode, TransportError> {
    assert!(addrs.len() >= 2, "a ring needs at least two nodes");
    assert!(me < addrs.len());
    let n = addrs.len();
    let succ = addrs[(me + 1) % n];
    let pred = addrs[(me + n - 1) % n];

    let listener = TcpListener::bind(addrs[me])?;

    // Dial neighbors with retry: peers may not be listening yet.
    let dial = |addr: SocketAddr, hello: u8| -> Result<TcpStream, TransportError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(mut s) => {
                    s.set_nodelay(true).ok();
                    s.write_all(&[hello])?;
                    return Ok(s);
                }
                Err(e) => {
                    if std::time::Instant::now() > deadline {
                        return Err(TransportError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };

    // Dial in a helper thread so we can accept concurrently (avoids the
    // deadlock where every node dials before anyone accepts).
    let dial_handle =
        std::thread::spawn(move || -> Result<(TcpStream, TcpStream), TransportError> {
            let data_out = dial(succ, b'D')?;
            let req_out = dial(pred, b'R')?;
            Ok((data_out, req_out))
        });

    // Accept our two inbound streams.
    let (tx, inbox) = unbounded::<DcMsg>();
    let out_bytes = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    let mut inbound = Vec::new();
    let mut seen_data = false;
    let mut seen_req = false;
    while !(seen_data && seen_req) {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true).ok();
        let mut hello = [0u8; 1];
        stream.read_exact(&mut hello)?;
        match hello[0] {
            b'D' if !seen_data => seen_data = true,
            b'R' if !seen_req => seen_req = true,
            other => {
                return Err(TransportError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected hello {other}"),
                )))
            }
        }
        inbound.push(stream.try_clone()?);
        let tx = tx.clone();
        readers.push(std::thread::spawn(move || {
            let mut stream = stream;
            while let Ok(Some(msg)) = read_frame_capped(&mut stream, max_frame) {
                if tx.send(msg).is_err() {
                    break;
                }
            }
        }));
    }

    let (data_out, req_out) = dial_handle.join().map_err(|_| TransportError::Disconnected)??;
    Ok(TcpNode {
        data_out: Mutex::new(data_out),
        req_out: Mutex::new(req_out),
        inbox,
        out_bytes,
        readers: Mutex::new(readers),
        inbound,
    })
}

impl RingTransport for TcpNode {
    fn send_data(&self, msg: DcMsg) -> Result<(), TransportError> {
        let size = msg.wire_size();
        self.out_bytes.fetch_add(size, Ordering::Relaxed);
        let result = write_frame(&mut *self.data_out.lock(), &msg);
        self.out_bytes.fetch_sub(size, Ordering::Relaxed);
        result.map_err(TransportError::Io)
    }

    fn send_request(&self, msg: DcMsg) -> Result<(), TransportError> {
        write_frame(&mut *self.req_out.lock(), &msg).map_err(TransportError::Io)
    }

    fn recv(&self) -> Option<DcMsg> {
        self.inbox.recv().ok()
    }

    fn outbound_bytes(&self) -> u64 {
        self.out_bytes.load(Ordering::Relaxed)
    }

    /// Tear down the node: shut both outgoing streams, force the inbound
    /// streams shut so the reader threads leave their blocking reads
    /// immediately, then join them. Safe to call in any order across
    /// ring members — no peer coordination is required — and idempotent.
    fn close(&self) {
        let _ = self.data_out.lock().shutdown(std::net::Shutdown::Both);
        let _ = self.req_out.lock().shutdown(std::net::Shutdown::Both);
        for s in &self.inbound {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for r in self.readers.lock().drain(..) {
            let _ = r.join();
        }
    }
}

impl TcpNode {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DcMsg> {
        self.inbox.try_recv().ok()
    }

    /// Consuming alias of [`RingTransport::close`].
    pub fn shutdown(self) {
        self.close();
    }
}

/// Sender side used by tests/tools to speak the frame protocol directly.
pub fn sender_of(tx: &Sender<DcMsg>) -> Sender<DcMsg> {
    tx.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use datacyclotron::msg::BatHeader;
    use datacyclotron::{BatId, NodeId, ReqMsg};

    fn local_addrs(n: usize) -> Vec<SocketAddr> {
        // Bind ephemeral listeners to reserve distinct free ports.
        let temp: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        temp.iter().map(|l| l.local_addr().unwrap()).collect()
    }

    #[test]
    fn frame_round_trip() {
        let msg = DcMsg::Bat {
            header: BatHeader::fresh(NodeId(1), BatId(7), 3),
            payload: Some(Bytes::from_static(b"abc")),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(back, msg);
        // Clean EOF → None.
        assert!(read_frame(&mut &b""[..]).unwrap().is_none());
    }

    #[test]
    fn corrupt_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&[99, 0, 0, 0, 0]);
        assert!(read_frame(&mut &buf[..]).is_err());
        // Oversized length header.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn three_node_tcp_ring_routes_both_directions() {
        let addrs = local_addrs(3);
        let mut joins = Vec::new();
        for me in 0..3 {
            let addrs = addrs.clone();
            joins.push(std::thread::spawn(move || join_ring(&addrs, me).unwrap()));
        }
        let nodes: Vec<TcpNode> = joins.into_iter().map(|j| j.join().unwrap()).collect();

        // Data clockwise: 0 → 1.
        nodes[0]
            .send_data(DcMsg::Bat {
                header: BatHeader::fresh(NodeId(0), BatId(42), 4),
                payload: Some(Bytes::from_static(b"data")),
            })
            .unwrap();
        match nodes[1].recv().unwrap() {
            DcMsg::Bat { header, payload } => {
                assert_eq!(header.bat, BatId(42));
                assert_eq!(payload.unwrap(), Bytes::from_static(b"data"));
            }
            other => panic!("{other:?}"),
        }

        // Requests anti-clockwise: 0 → 2.
        nodes[0].send_request(DcMsg::Request(ReqMsg { origin: NodeId(0), bat: BatId(5) })).unwrap();
        match nodes[2].recv().unwrap() {
            DcMsg::Request(r) => assert_eq!(r.origin, NodeId(0)),
            other => panic!("{other:?}"),
        }

        // Full circulation: a BAT completes the ring.
        for hop in 0..3 {
            let from = hop;
            nodes[from]
                .send_data(DcMsg::Bat {
                    header: BatHeader::fresh(NodeId(9), BatId(9), 0),
                    payload: None,
                })
                .unwrap();
            let to = (hop + 1) % 3;
            assert!(matches!(nodes[to].recv().unwrap(), DcMsg::Bat { .. }));
        }
        for n in nodes {
            n.shutdown();
        }
    }
}
