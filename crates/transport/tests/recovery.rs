//! Crash-recovery acceptance: a three-process `dc-node` ring with data
//! dirs, an INSERT workload, a SIGKILL of the owner mid-workload, and a
//! restart from the same `--data-dir`. Every acknowledged INSERT must be
//! visible to SELECTs from every surviving and revived member.

// The workspace-level shared harness (also used by the concurrency and
// chaos suites in the umbrella crate's `tests/`).
#[path = "../../../tests/support/mod.rs"]
mod support;

use dc_client::Val;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use support::{free_addrs, retry_sql, sql, wait_ready};

const BIN: &str = env!("CARGO_BIN_EXE_dc-node");

fn spawn_node(ring_spec: &str, me: usize, sql: SocketAddr, data_dir: &Path) -> Child {
    Command::new(BIN)
        .args([
            "serve",
            "--ring",
            ring_spec,
            "--me",
            &me.to_string(),
            "--sql",
            &sql.to_string(),
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fsync",
            "off", // the test SIGKILLs the process, not the machine
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dc-node")
}

/// Owns the node processes and the scratch dir; kills and scrubs both
/// even when an assertion panics.
struct Cluster {
    children: Vec<Option<Child>>,
    scratch: PathBuf,
}

impl Cluster {
    fn data_dir(&self, i: usize) -> PathBuf {
        self.scratch.join(format!("node{i}"))
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for c in self.children.iter_mut().flatten() {
            let _ = c.kill();
            let _ = c.wait();
        }
        std::fs::remove_dir_all(&self.scratch).ok();
    }
}

#[test]
fn sigkilled_node_recovers_its_data_and_rejoins_the_ring() {
    let ring = free_addrs(3);
    let sqls = free_addrs(3);
    let ring_spec = ring.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
    let scratch = std::env::temp_dir().join(format!("dc_recovery_it_{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let mut cluster = Cluster { children: Vec::new(), scratch };
    for (i, s) in sqls.iter().enumerate() {
        let child = spawn_node(&ring_spec, i, *s, &cluster.data_dir(i));
        cluster.children.push(Some(child));
    }
    for (i, s) in sqls.iter().enumerate() {
        wait_ready(*s, &format!("node {i}"));
    }

    // Owner node 0 creates the table; the DDL gossip replicates.
    sql(sqls[0], "create table logs (k int, msg varchar(16))").unwrap();
    sql(sqls[1], ".wait logs").unwrap();
    sql(sqls[2], ".wait logs").unwrap();

    // INSERT workload on the owner: every returning statement is an
    // acknowledged, WAL-logged row. The SIGKILL lands mid-workload,
    // between acknowledged inserts.
    let mut acked = Vec::new();
    for k in 0..12 {
        sql(sqls[0], &format!("insert into logs values ({k}, 'row{k}')")).unwrap();
        acked.push(k);
        if k == 7 {
            let mut child = cluster.children[0].take().expect("node 0 running");
            child.kill().unwrap();
            child.wait().unwrap();
            break;
        }
    }

    // Restart the owner with the same data dir: recovery replays the
    // WAL, re-advertises sys.logs, and the TCP ring heals around it.
    std::thread::sleep(Duration::from_millis(200));
    cluster.children[0] = Some(spawn_node(&ring_spec, 0, sqls[0], &cluster.data_dir(0)));
    wait_ready(sqls[0], "revived node 0");

    // Every acknowledged row is visible ring-wide: from the revived
    // owner (local disk) and from both survivors (fragments pulled
    // through the healed ring).
    for (i, s) in sqls.iter().enumerate() {
        let rs = retry_sql(*s, "select k from logs order by k", Duration::from_secs(60));
        let rows: Vec<Val> = (0..rs.row_count()).map(|r| rs.cell(r, 0)).collect();
        let want: Vec<Val> = acked.iter().map(|&k| Val::Int(k)).collect();
        assert_eq!(rows, want, "node {i} is missing acknowledged rows:\n{}", rs.render());
    }

    // And the revived ring still takes writes.
    sql(sqls[0], "insert into logs values (100, 'post')").unwrap();
    let rs = retry_sql(sqls[1], "select count(*) from logs", Duration::from_secs(60));
    assert_eq!(rs.cell(0, 0), Val::Lng(acked.len() as i64 + 1), "{}", rs.render());
}

/// §6.4 mutation durability: UPDATEs and DELETEs — issued from
/// *non-owner* nodes, so they travel the ring and come back as typed
/// acks — survive a SIGKILL of the owner. Every acknowledged mutation
/// (not just INSERTs) must be visible ring-wide after the owner
/// restarts from its `--data-dir`.
#[test]
fn sigkilled_owner_recovers_acknowledged_mutations() {
    let ring = free_addrs(3);
    let sqls = free_addrs(3);
    let ring_spec = ring.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",");
    let scratch = std::env::temp_dir().join(format!("dc_recovery_mut_{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let mut cluster = Cluster { children: Vec::new(), scratch };
    for (i, s) in sqls.iter().enumerate() {
        let child = spawn_node(&ring_spec, i, *s, &cluster.data_dir(i));
        cluster.children.push(Some(child));
    }
    for (i, s) in sqls.iter().enumerate() {
        wait_ready(*s, &format!("node {i}"));
    }

    sql(sqls[0], "create table acct (id int, bal int)").unwrap();
    sql(sqls[1], ".wait acct").unwrap();
    sql(sqls[2], ".wait acct").unwrap();
    for k in 0..10 {
        sql(sqls[0], &format!("insert into acct values ({k}, 0)")).unwrap();
    }

    // Mixed mutation workload from the two NON-owner nodes: each
    // statement's ring-routed ack is the durability acknowledgement the
    // oracle holds the revived owner to.
    let mut bal = [0i32; 10];
    for k in 0..6 {
        let rs = sql(sqls[1 + k % 2], &format!("update acct set bal = {} where id = {k}", k * 7))
            .unwrap();
        assert_eq!(rs.affected, Some(1), "update {k}: {}", rs.render());
        bal[k] = (k as i32) * 7;
    }
    let rs = sql(sqls[2], "delete from acct where id = 9").unwrap();
    assert_eq!(rs.affected, Some(1), "{}", rs.render());

    // SIGKILL the owner mid-workload, right after those acks.
    let mut child = cluster.children[0].take().expect("node 0 running");
    child.kill().unwrap();
    child.wait().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    cluster.children[0] = Some(spawn_node(&ring_spec, 0, sqls[0], &cluster.data_dir(0)));
    wait_ready(sqls[0], "revived node 0");

    // Every acknowledged mutation is visible from every node: the six
    // rewritten balances and the deleted row, nothing else.
    let want: Vec<(Val, Val)> = (0..9).map(|k| (Val::Int(k), Val::Int(bal[k as usize]))).collect();
    for (i, s) in sqls.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let rs = retry_sql(*s, "select id, bal from acct order by id", Duration::from_secs(60));
            let got: Vec<(Val, Val)> =
                (0..rs.row_count()).map(|r| (rs.cell(r, 0), rs.cell(r, 1))).collect();
            if got == want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "node {i} lost acknowledged mutations:\n{}",
                rs.render()
            );
            std::thread::sleep(Duration::from_millis(200));
        }
    }

    // The revived owner still applies routed mutations.
    let rs = retry_sql(sqls[1], "update acct set bal = 1000 where id = 8", Duration::from_secs(60));
    assert_eq!(rs.affected, Some(1), "{}", rs.render());
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let rs = retry_sql(sqls[2], "select bal from acct where id = 8", Duration::from_secs(60));
        if rs.row_count() == 1 && rs.cell(0, 0) == Val::Int(1000) {
            break;
        }
        assert!(Instant::now() < deadline, "post-recovery update never visible: {}", rs.render());
        std::thread::sleep(Duration::from_millis(200));
    }
}
