//! Errors across parsing, planning and interpretation.

use std::fmt;

#[derive(Debug)]
pub enum MalError {
    /// Syntax error with line number.
    Parse { line: usize, msg: String },
    /// Call to a function no module provides.
    UnknownFunction(String),
    /// Wrong number or type of arguments; message names the call.
    BadCall(String),
    /// Use of a variable before definition.
    Undefined(String),
    /// Kernel error bubbled up from batstore.
    Bat(batstore::BatError),
    /// Failure reported by the Data Cyclotron layer (e.g. a request for a
    /// BAT that no longer exists — outcome 1 of the request algorithm).
    Dc(String),
    /// Anything else at execution time.
    Exec(String),
}

pub type Result<T> = std::result::Result<T, MalError>;

impl fmt::Display for MalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            MalError::UnknownFunction(name) => write!(f, "unknown function: {name}"),
            MalError::BadCall(msg) => write!(f, "bad call: {msg}"),
            MalError::Undefined(v) => write!(f, "undefined variable: {v}"),
            MalError::Bat(e) => write!(f, "kernel error: {e}"),
            MalError::Dc(msg) => write!(f, "data cyclotron: {msg}"),
            MalError::Exec(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for MalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MalError::Bat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<batstore::BatError> for MalError {
    fn from(e: batstore::BatError) -> Self {
        MalError::Bat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = MalError::Parse { line: 3, msg: "expected ';'".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(MalError::UnknownFunction("foo.bar".into()).to_string().contains("foo.bar"));
    }

    #[test]
    fn bat_error_wraps() {
        let e: MalError = batstore::BatError::NotFound("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
