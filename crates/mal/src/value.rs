//! Runtime values of the MAL interpreter.

use batstore::{Bat, Val};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A result set under construction: `sql.resultSet` creates it,
/// `sql.rsCol` appends columns, `sql.exportResult` hands the snapshot to
/// the session as a typed [`batstore::ResultSet`] — rendering to text is
/// the caller's business, not the plan's. Shared behind a mutex because
/// plan threads may touch it concurrently.
#[derive(Clone, Default)]
pub struct ResultSet(Arc<Mutex<batstore::ResultSet>>);

impl ResultSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_column(&self, table: &str, name: &str, sql_type: &str, data: Arc<Bat>) {
        self.0.lock().push_column(table, name, sql_type, data);
    }

    pub fn row_count(&self) -> usize {
        self.0.lock().row_count()
    }

    pub fn column_count(&self) -> usize {
        self.0.lock().column_count()
    }

    /// Cell value (row-major access for rendering and tests).
    pub fn cell(&self, row: usize, col: usize) -> Val {
        self.0.lock().cell(row, col)
    }

    /// The typed result accumulated so far (what `sql.exportResult`
    /// publishes to the session).
    pub fn snapshot(&self) -> batstore::ResultSet {
        self.0.lock().clone()
    }

    /// Render in MonetDB's tabular client format.
    pub fn render(&self) -> String {
        self.0.lock().render()
    }
}

/// A MAL runtime value.
#[derive(Clone)]
pub enum MVal {
    Void,
    Int(i64),
    Dbl(f64),
    Str(String),
    Oid(u64),
    Bool(bool),
    /// BATs are shared, never copied, between instructions — the paper's
    /// "pointer to a memory mapped region".
    Bat(Arc<Bat>),
    /// A Data Cyclotron request ticket (returned by
    /// `datacyclotron.request`, consumed by `pin`).
    Ticket(u64),
    /// A pinned BAT: behaves as a BAT everywhere, but remembers the ticket
    /// so `datacyclotron.unpin(X)` on the pinned variable — exactly as the
    /// paper's Table 2 writes it — can release the right request.
    Pinned {
        bat: Arc<Bat>,
        ticket: u64,
    },
    ResultSet(ResultSet),
    /// An output stream handle (`io.stdout()`); writes are captured by the
    /// session.
    Stream,
}

impl MVal {
    pub fn type_name(&self) -> &'static str {
        match self {
            MVal::Void => "void",
            MVal::Int(_) => "int",
            MVal::Dbl(_) => "dbl",
            MVal::Str(_) => "str",
            MVal::Oid(_) => "oid",
            MVal::Bool(_) => "bit",
            MVal::Bat(_) => "bat",
            MVal::Ticket(_) => "ticket",
            MVal::Pinned { .. } => "bat",
            MVal::ResultSet(_) => "resultset",
            MVal::Stream => "stream",
        }
    }

    pub fn as_bat(&self) -> Option<&Arc<Bat>> {
        match self {
            MVal::Bat(b) => Some(b),
            MVal::Pinned { bat, .. } => Some(bat),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            MVal::Int(v) => Some(*v),
            MVal::Oid(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            MVal::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convert a kernel scalar into a MAL value.
    pub fn from_val(v: Val) -> MVal {
        match v {
            Val::Nil => MVal::Void,
            Val::Oid(o) => MVal::Oid(o),
            Val::Int(i) => MVal::Int(i as i64),
            Val::Lng(l) => MVal::Int(l),
            Val::Dbl(d) => MVal::Dbl(d),
            Val::Str(s) => MVal::Str(s),
            Val::Bool(b) => MVal::Bool(b),
            Val::Date(d) => MVal::Int(d as i64),
        }
    }
}

impl fmt::Debug for MVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MVal::Void => write!(f, "void"),
            MVal::Int(v) => write!(f, "{v}:int"),
            MVal::Dbl(v) => write!(f, "{v}:dbl"),
            MVal::Str(s) => write!(f, "{s:?}:str"),
            MVal::Oid(v) => write!(f, "{v}@0"),
            MVal::Bool(b) => write!(f, "{b}:bit"),
            MVal::Bat(b) => write!(f, "<bat {}x{}>", b.count(), b.tail_type()),
            MVal::Ticket(t) => write!(f, "<ticket {t}>"),
            MVal::Pinned { bat, ticket } => {
                write!(f, "<pinned bat {}x{} t{}>", bat.count(), bat.tail_type(), ticket)
            }
            MVal::ResultSet(rs) => write!(f, "<resultset {} cols>", rs.column_count()),
            MVal::Stream => write!(f, "<stream>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batstore::Column;

    #[test]
    fn result_set_accumulates() {
        let rs = ResultSet::new();
        rs.add_column("sys.c", "t_id", "int", Arc::new(Bat::dense(Column::from(vec![1, 2]))));
        assert_eq!(rs.column_count(), 1);
        assert_eq!(rs.row_count(), 2);
        assert_eq!(rs.cell(1, 0), Val::Int(2));
    }

    #[test]
    fn render_monetdb_style() {
        let rs = ResultSet::new();
        rs.add_column("sys.c", "t_id", "int", Arc::new(Bat::dense(Column::from(vec![7]))));
        let out = rs.render();
        assert!(out.contains("% sys.c.t_id"), "{out}");
        assert!(out.contains("% int"), "{out}");
        assert!(out.contains("[ 7 ]"), "{out}");
    }

    #[test]
    fn from_val_conversions() {
        assert!(matches!(MVal::from_val(Val::Int(3)), MVal::Int(3)));
        assert!(matches!(MVal::from_val(Val::Lng(5)), MVal::Int(5)));
        assert!(matches!(MVal::from_val(Val::Nil), MVal::Void));
        assert!(matches!(MVal::from_val(Val::from("x")), MVal::Str(_)));
    }

    #[test]
    fn accessors() {
        assert_eq!(MVal::Int(4).as_int(), Some(4));
        assert_eq!(MVal::Oid(4).as_int(), Some(4));
        assert_eq!(MVal::Str("a".into()).as_str(), Some("a"));
        assert!(MVal::Void.as_bat().is_none());
        assert_eq!(MVal::Ticket(9).type_name(), "ticket");
    }
}
