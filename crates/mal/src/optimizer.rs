//! Plan optimizers.
//!
//! [`dc_optimize`] is the Data Cyclotron optimizer of paper §4.1: it
//! rewrites every `sql.bind` into a non-blocking `datacyclotron.request`
//! hoisted to the top of the plan, injects a blocking `datacyclotron.pin`
//! immediately before the first use of each bound variable, and appends
//! `datacyclotron.unpin` releases. Applied to the paper's Table 1 plan it
//! reproduces Table 2 — including the variable numbering, because fresh
//! variables take the lowest unused `X<n>` slots exactly as MonetDB's
//! optimizer does.

use crate::ast::{Arg, Instr, Program, VarId};
use std::collections::HashMap;

// Re-exported alongside dc_optimize in lib.rs.

/// Rewrite a plan to fetch its persistent BATs through the Data Cyclotron.
pub fn dc_optimize(prog: &Program) -> Program {
    let mut out = Program::new(&prog.module, &prog.name);
    out.vars = prog.vars.clone();

    // Pass 1: find binds, allocate request-ticket variables, and hoist the
    // request calls ("The optimizer replaces each BAT bind call by a
    // request() call and keeps a list of all outstanding BAT requests").
    let mut ticket_of: HashMap<VarId, VarId> = HashMap::new(); // bound var → ticket var
    for instr in &prog.instrs {
        if instr.is("sql", "bind") {
            if let Some(&target) = instr.targets.first() {
                let ticket = out.fresh_var();
                ticket_of.insert(target, ticket);
                out.push(Instr::assign(ticket, "datacyclotron", "request", instr.args.clone()));
            }
        }
    }

    // Pass 2: copy the remaining instructions; before the first use of a
    // bound variable, inject its pin. Track pin order for the unpins.
    let mut pinned: Vec<VarId> = Vec::new();
    for instr in &prog.instrs {
        if instr.is("sql", "bind") {
            continue;
        }
        for used in instr.uses().collect::<Vec<_>>() {
            if let Some(&ticket) = ticket_of.get(&used) {
                if !pinned.contains(&used) {
                    out.push(Instr::assign(used, "datacyclotron", "pin", vec![Arg::Var(ticket)]));
                    pinned.push(used);
                }
            }
        }
        out.push(instr.clone());
    }

    // Pass 3: release the fragments. The paper's example places all
    // unpins at the end of the plan (intermediates may alias the pinned
    // regions zero-copy), in pin order.
    for v in pinned {
        out.push(Instr::call("datacyclotron", "unpin", vec![Arg::Var(v)]));
    }

    // Binds that were never used still got a request (pure prefetch); a
    // dead-code pass can drop them if undesired.
    out
}

/// Common-subexpression elimination: two pure instructions with the same
/// function and (resolved) arguments compute the same value, so the
/// second reuses the first's target. The canonical key doubles as the
/// *plan signature* that §6.2 intermediate-result publication uses to
/// recognize shareable fragments across queries.
///
/// Only pure modules participate — `sql`, `io` and `datacyclotron` calls
/// have effects (or, for `pin`, blocking semantics) and are never merged.
pub fn common_subexpression_eliminate(prog: &Program) -> Program {
    const PURE_MODULES: &[&str] = &["bat", "algebra", "aggr", "group"];
    let mut out = Program::new(&prog.module, &prog.name);
    out.vars = prog.vars.clone();
    // Value numbering: canonical expression text → the vars holding it.
    let mut value_of: HashMap<String, Vec<VarId>> = HashMap::new();
    // Current substitution for each var (identity unless merged).
    let mut subst: Vec<VarId> = (0..prog.vars.len() as u32).map(VarId).collect();

    for instr in &prog.instrs {
        let mut i = instr.clone();
        for a in &mut i.args {
            if let Arg::Var(v) = a {
                *a = Arg::Var(subst[v.0 as usize]);
            }
        }
        let pure = PURE_MODULES.contains(&i.module.as_str());
        if pure && !i.targets.is_empty() {
            let key = expression_key(&i, &out);
            if let Some(prior) = value_of.get(&key) {
                if prior.len() == i.targets.len() {
                    for (t, p) in i.targets.iter().zip(prior) {
                        subst[t.0 as usize] = *p;
                    }
                    continue; // drop the duplicate computation
                }
            }
            value_of.insert(key, i.targets.clone());
        }
        out.push(i);
    }
    out
}

/// Canonical text of one instruction for value numbering / §6.2 plan
/// signatures: `module.func(arg,…)` with variables printed by name.
pub fn expression_key(instr: &Instr, prog: &Program) -> String {
    use std::fmt::Write;
    let mut s = format!("{}.{}(", instr.module, instr.func);
    for (k, a) in instr.args.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        match a {
            Arg::Var(v) => {
                let _ = write!(s, "{}", prog.var_name(*v));
            }
            Arg::Const(c) => {
                let _ = write!(s, "{c}");
            }
        }
    }
    s.push(')');
    s
}

/// Remove assignments whose targets are never read, keeping calls with
/// side effects. Standard backward liveness over the straight-line plan.
pub fn dead_code_eliminate(prog: &Program) -> Program {
    const EFFECTFUL_MODULES: &[&str] = &["sql", "io", "datacyclotron"];
    let mut live = vec![false; prog.vars.len()];
    let mut keep = vec![false; prog.instrs.len()];

    for (i, instr) in prog.instrs.iter().enumerate().rev() {
        let effectful =
            instr.targets.is_empty() || EFFECTFUL_MODULES.contains(&instr.module.as_str());
        let needed = effectful || instr.targets.iter().any(|t| live[t.0 as usize]);
        if needed {
            keep[i] = true;
            for v in instr.uses() {
                live[v.0 as usize] = true;
            }
        }
    }

    let mut out = Program::new(&prog.module, &prog.name);
    out.vars = prog.vars.clone();
    for (i, instr) in prog.instrs.iter().enumerate() {
        if keep[i] {
            out.push(instr.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, PAPER_TABLE1};

    /// The paper's Table 2: the Table 1 plan after the DC optimizer.
    const PAPER_TABLE2: &str = r#"
function user.s1_2():void;
    X2 := datacyclotron.request("sys","t","id",0);
    X3 := datacyclotron.request("sys","c","t_id",0);
    X6 := datacyclotron.pin(X3);
    X9 := bat.reverse(X6);
    X1 := datacyclotron.pin(X2);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
    datacyclotron.unpin(X6);
    datacyclotron.unpin(X1);
end s1_2;
"#;

    fn shape(p: &Program) -> Vec<(String, Vec<String>, Vec<String>)> {
        p.instrs
            .iter()
            .map(|i| {
                (
                    i.qualified_name(),
                    i.targets.iter().map(|t| p.var_name(*t).to_string()).collect(),
                    i.args
                        .iter()
                        .map(|a| match a {
                            Arg::Var(v) => p.var_name(*v).to_string(),
                            Arg::Const(c) => c.to_string(),
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn reproduces_paper_table2_exactly() {
        let table1 = parse_program(PAPER_TABLE1).unwrap();
        let optimized = dc_optimize(&table1);
        let expected = parse_program(PAPER_TABLE2).unwrap();
        assert_eq!(
            shape(&optimized),
            shape(&expected),
            "\noptimized:\n{optimized}\nexpected:\n{expected}"
        );
    }

    #[test]
    fn requests_hoisted_and_nonblocking_first() {
        let optimized = dc_optimize(&parse_program(PAPER_TABLE1).unwrap());
        assert!(optimized.instrs[0].is("datacyclotron", "request"));
        assert!(optimized.instrs[1].is("datacyclotron", "request"));
    }

    #[test]
    fn pin_before_first_use() {
        let optimized = dc_optimize(&parse_program(PAPER_TABLE1).unwrap());
        let pin_x6 = optimized
            .instrs
            .iter()
            .position(|i| i.is("datacyclotron", "pin") && optimized.var_name(i.targets[0]) == "X6")
            .unwrap();
        let use_x6 = optimized.instrs.iter().position(|i| i.is("bat", "reverse")).unwrap();
        assert_eq!(pin_x6 + 1, use_x6, "pin must immediately precede first use");
    }

    #[test]
    fn unpins_at_end_in_pin_order() {
        let optimized = dc_optimize(&parse_program(PAPER_TABLE1).unwrap());
        let n = optimized.len();
        assert!(optimized.instrs[n - 2].is("datacyclotron", "unpin"));
        assert!(optimized.instrs[n - 1].is("datacyclotron", "unpin"));
        let arg_name = |i: &Instr| match &i.args[0] {
            Arg::Var(v) => optimized.var_name(*v).to_string(),
            _ => panic!(),
        };
        assert_eq!(arg_name(&optimized.instrs[n - 2]), "X6");
        assert_eq!(arg_name(&optimized.instrs[n - 1]), "X1");
    }

    #[test]
    fn unused_bind_becomes_prefetch_without_pin() {
        let p = parse_program(
            "function user.q():void;\nX1 := sql.bind(\"sys\",\"t\",\"id\",0);\nX9 := io.stdout();\nend q;",
        )
        .unwrap();
        let o = dc_optimize(&p);
        assert!(o.instrs.iter().any(|i| i.is("datacyclotron", "request")));
        assert!(!o.instrs.iter().any(|i| i.is("datacyclotron", "pin")));
        assert!(!o.instrs.iter().any(|i| i.is("datacyclotron", "unpin")));
    }

    #[test]
    fn idempotent_on_plans_without_binds() {
        let p = parse_program("function user.q():void;\nX1 := io.stdout();\nend q;").unwrap();
        let o = dc_optimize(&p);
        assert_eq!(shape(&o), shape(&p));
    }

    #[test]
    fn dce_removes_dead_pure_code() {
        let p = parse_program(
            "function user.q():void;\nX0 := io.stdout();\nX1 := bat.reverse(X0);\nio.print(X0);\nend q;",
        )
        .unwrap();
        let o = dead_code_eliminate(&p);
        // bat.reverse(X0) assigns X1 which nobody reads → dropped.
        assert_eq!(o.len(), 2, "{o}");
        assert!(!o.instrs.iter().any(|i| i.is("bat", "reverse")));
    }

    #[test]
    fn dce_keeps_effectful_calls() {
        let p = parse_program(PAPER_TABLE1).unwrap();
        let o = dead_code_eliminate(&p);
        assert_eq!(o.len(), p.len(), "paper plan has no dead code");
    }

    #[test]
    fn cse_merges_duplicate_pure_work() {
        let p = parse_program(
            "function user.q():void;\n\
             X0 := sql.bind(\"sys\",\"t\",\"id\",0);\n\
             X1 := bat.reverse(X0);\n\
             X2 := bat.reverse(X0);\n\
             X3 := algebra.join(X1, X2);\n\
             io.print(X3);\n\
             end q;",
        )
        .unwrap();
        let o = common_subexpression_eliminate(&p);
        assert_eq!(o.len(), p.len() - 1, "one duplicate reverse removed:\n{o}");
        // The join now references X1 twice.
        let join = o.instrs.iter().find(|i| i.is("algebra", "join")).unwrap();
        assert_eq!(join.args[0], join.args[1]);
    }

    #[test]
    fn cse_transitive_through_substitution() {
        // X2 duplicates X1; X4 duplicates X3 only *after* X2 → X1.
        let p = parse_program(
            "function user.q():void;\n\
             X0 := sql.bind(\"sys\",\"t\",\"id\",0);\n\
             X1 := bat.reverse(X0);\n\
             X2 := bat.reverse(X0);\n\
             X3 := algebra.markT(X1, 0@0);\n\
             X4 := algebra.markT(X2, 0@0);\n\
             io.print(X3);\n\
             io.print(X4);\n\
             end q;",
        )
        .unwrap();
        let o = common_subexpression_eliminate(&p);
        assert_eq!(o.len(), p.len() - 2, "{o}");
    }

    #[test]
    fn cse_never_merges_effectful_or_dc_calls() {
        let p = parse_program(
            "function user.q():void;\n\
             X0 := sql.bind(\"sys\",\"t\",\"id\",0);\n\
             X1 := sql.bind(\"sys\",\"t\",\"id\",0);\n\
             X2 := io.stdout();\n\
             X3 := io.stdout();\n\
             io.print(X0);\nio.print(X1);\nio.print(X2);\nio.print(X3);\n\
             end q;",
        )
        .unwrap();
        let o = common_subexpression_eliminate(&p);
        assert_eq!(o.len(), p.len(), "sql/io calls must never merge");
    }

    #[test]
    fn cse_preserves_semantics_on_generated_plans() {
        // The paper's plan has no duplicates; CSE must be a no-op.
        let p = parse_program(PAPER_TABLE1).unwrap();
        let o = common_subexpression_eliminate(&p);
        assert_eq!(o.len(), p.len());
    }

    #[test]
    fn expression_key_is_stable_signature() {
        let mut p = Program::new("user", "q");
        let a = p.var("Xa");
        let t = p.var("Xt");
        let i = Instr::assign(
            t,
            "algebra",
            "join",
            vec![Arg::Var(a), Arg::Const(crate::ast::Const::Oid(0))],
        );
        assert_eq!(expression_key(&i, &p), "algebra.join(Xa,0@0)");
    }
}
