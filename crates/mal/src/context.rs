//! The session context: catalog + BAT store + the seam to the Data
//! Cyclotron layer.
//!
//! The `datacyclotron` MAL module calls through [`DcHooks`]. The live ring
//! engine implements it with real request/pin/unpin semantics (pin blocks
//! until the fragment arrives from the predecessor node — paper §4.2.1);
//! [`LocalHooks`] implements it against the local catalog so plans run
//! unchanged on a single node ("the BAT is retrieved from disk or local
//! memory and put into the DBMS space").

use crate::error::{MalError, Result};
use batstore::{Bat, BatStore, Catalog, ColType, Column, RowPredicate, Val};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// The seam between the DBMS layer and the Data Cyclotron layer (§4.1):
/// the three calls the DC optimizer injects into plans, plus the DDL/DML
/// entry points (`sql.createTable` / `sql.append`) that SQL statements
/// route through so table creation and row appends reach the ring's
/// owner/versioning machinery (§6.4) instead of a local store.
pub trait DcHooks: Send + Sync {
    /// `datacyclotron.request(schema, table, column, access)`: announce
    /// interest; never blocks. Returns a ticket to pin against.
    fn request(&self, query: u64, schema: &str, table: &str, column: &str) -> Result<u64>;

    /// `datacyclotron.pin(ticket)`: block until the BAT is available in
    /// the local DBMS space and return it.
    fn pin(&self, query: u64, ticket: u64) -> Result<Arc<Bat>>;

    /// `datacyclotron.unpin(ticket)`: release the fragment; the memory
    /// region may be reclaimed once all pins are gone.
    fn unpin(&self, query: u64, ticket: u64) -> Result<()>;

    /// `datacyclotron.joinplan(schema, ltab, lcol, rtab, rcol, strategy,
    /// est_bytes)`: planner annotation for one equi-join. Codegen chose
    /// `strategy` ("shuffle" or "broadcast") from its compile-time
    /// catalog size estimates; a ring seam re-validates against the live
    /// gossiped fragment sizes, classifies the join as co-located vs.
    /// routed, and feeds the telemetry counters. Purely observational —
    /// the default is a no-op so in-process execution needs nothing.
    #[allow(clippy::too_many_arguments)]
    fn join_plan(
        &self,
        _query: u64,
        _schema: &str,
        _ltab: &str,
        _lcol: &str,
        _rtab: &str,
        _rcol: &str,
        _strategy: &str,
        _est_bytes: u64,
    ) -> Result<()> {
        Ok(())
    }

    /// `sql.createTable`: register a new table. On a ring node this
    /// makes the node the owner of the (empty) column fragments and
    /// replicates the metadata around the ring.
    fn create_table(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        _cols: &[(String, ColType)],
    ) -> Result<()> {
        Err(MalError::Dc(format!("this DC seam cannot create {schema}.{table}")))
    }

    /// `sql.append`: append rows column-at-a-time; returns the number of
    /// rows appended. On a ring node, appends to foreign fragments are
    /// routed clockwise to their owner (§6.4) and applied there.
    fn append_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        _cols: &[(String, Column)],
    ) -> Result<u64> {
        Err(MalError::Dc(format!("this DC seam cannot append to {schema}.{table}")))
    }

    /// `sql.update`: write each assignment into every row matching the
    /// predicate conjunction; returns the number of rows touched. On a
    /// ring node the *logical* mutation is routed to the fragment owner,
    /// which evaluates the predicates against its authoritative payload
    /// and bumps the fragment versions (§6.4).
    fn update_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        _assigns: &[(String, Val)],
        _preds: &[RowPredicate],
    ) -> Result<u64> {
        Err(MalError::Dc(format!("this DC seam cannot update {schema}.{table}")))
    }

    /// `sql.delete`: remove every row matching the predicate conjunction
    /// from all columns in lockstep; returns the number of rows removed.
    /// Owner-routed on ring nodes, exactly like [`DcHooks::update_rows`].
    fn delete_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        _preds: &[RowPredicate],
    ) -> Result<u64> {
        Err(MalError::Dc(format!("this DC seam cannot delete from {schema}.{table}")))
    }

    /// `sql.sysview`: materialize a read-only `dc.*` system view
    /// (`stats`, `latency`, `trace`) as a typed result set from the
    /// node's live telemetry. Only ring nodes have telemetry to serve.
    fn sys_view(&self, _query: u64, view: &str) -> Result<batstore::ResultSet> {
        Err(MalError::Dc(format!("system view dc.{view} is only available on a ring node")))
    }
}

/// Single-node hooks: requests resolve directly against the local
/// catalog. Used for tests, for the MonetDB-equivalent baseline, and for
/// plans that were not rewritten by the DC optimizer.
pub struct LocalHooks {
    catalog: Arc<RwLock<Catalog>>,
    store: Arc<RwLock<BatStore>>,
    tickets: Mutex<Vec<Arc<Bat>>>,
}

impl LocalHooks {
    pub fn new(catalog: Arc<RwLock<Catalog>>, store: Arc<RwLock<BatStore>>) -> Self {
        LocalHooks { catalog, store, tickets: Mutex::new(Vec::new()) }
    }
}

impl DcHooks for LocalHooks {
    fn request(&self, _query: u64, schema: &str, table: &str, column: &str) -> Result<u64> {
        let key = self.catalog.read().bind(schema, table, column)?;
        let bat = self.store.read().get(key)?;
        let mut tickets = self.tickets.lock();
        tickets.push(bat);
        Ok((tickets.len() - 1) as u64)
    }

    fn pin(&self, _query: u64, ticket: u64) -> Result<Arc<Bat>> {
        self.tickets
            .lock()
            .get(ticket as usize)
            .cloned()
            .ok_or_else(|| MalError::Dc(format!("unknown ticket {ticket}")))
    }

    fn unpin(&self, _query: u64, _ticket: u64) -> Result<()> {
        Ok(())
    }

    fn create_table(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        cols: &[(String, ColType)],
    ) -> Result<()> {
        let mut catalog = self.catalog.write();
        let mut store = self.store.write();
        let typed: Vec<(&str, Column)> =
            cols.iter().map(|(name, ty)| (name.as_str(), Column::empty(*ty))).collect();
        catalog.create_table_columnar(&mut store, schema, table, typed)?;
        Ok(())
    }

    fn append_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        cols: &[(String, Column)],
    ) -> Result<u64> {
        let mut catalog = self.catalog.write();
        let mut store = self.store.write();
        Ok(catalog.append_rows(&mut store, schema, table, cols)? as u64)
    }

    fn update_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        assigns: &[(String, Val)],
        preds: &[RowPredicate],
    ) -> Result<u64> {
        let mut catalog = self.catalog.write();
        let mut store = self.store.write();
        Ok(catalog.update_rows(&mut store, schema, table, assigns, preds)? as u64)
    }

    fn delete_rows(
        &self,
        _query: u64,
        schema: &str,
        table: &str,
        preds: &[RowPredicate],
    ) -> Result<u64> {
        let mut catalog = self.catalog.write();
        let mut store = self.store.write();
        Ok(catalog.delete_rows(&mut store, schema, table, preds)? as u64)
    }
}

/// Everything an executing plan can reach.
pub struct SessionCtx {
    pub catalog: Arc<RwLock<Catalog>>,
    pub store: Arc<RwLock<BatStore>>,
    /// The Data Cyclotron layer: ring hooks when this node participates in
    /// a ring, [`LocalHooks`] otherwise. One instance for the session so
    /// tickets issued by `request` stay valid for `pin`/`unpin`.
    hooks: Arc<dyn DcHooks>,
    /// Captured `io.stdout()` output (`io.print` and friends).
    pub out: Mutex<String>,
    /// The typed result published by the plan's SQL sink
    /// (`sql.exportResult` / `sql.createTable` / `sql.append`).
    result: Mutex<Option<batstore::ResultSet>>,
    /// The query id handed to `DcHooks` calls (assigned at submit time).
    pub query_id: u64,
}

impl SessionCtx {
    pub fn new(catalog: Arc<RwLock<Catalog>>, store: Arc<RwLock<BatStore>>) -> Self {
        let hooks = Arc::new(LocalHooks::new(Arc::clone(&catalog), Arc::clone(&store)));
        SessionCtx {
            catalog,
            store,
            hooks,
            out: Mutex::new(String::new()),
            result: Mutex::new(None),
            query_id: 0,
        }
    }

    pub fn with_dc(mut self, dc: Arc<dyn DcHooks>) -> Self {
        self.hooks = dc;
        self
    }

    pub fn with_query_id(mut self, qid: u64) -> Self {
        self.query_id = qid;
        self
    }

    /// The Data Cyclotron seam for this session.
    pub fn hooks(&self) -> Arc<dyn DcHooks> {
        Arc::clone(&self.hooks)
    }

    /// Publish the statement's typed result. The SQL sinks call this
    /// once per statement; a later sink replaces an earlier one.
    pub fn set_result(&self, rs: batstore::ResultSet) {
        *self.result.lock() = Some(rs);
    }

    /// Drain the session's typed result. Captured `io.print` text (which
    /// has no columnar shape) rides along as leading info text.
    pub fn take_result(&self) -> batstore::ResultSet {
        let text = std::mem::take(&mut *self.out.lock());
        let mut rs = self.result.lock().take().unwrap_or_default();
        rs.prepend_text(&text);
        rs
    }

    /// Drain the session's output as rendered text. This is a view of
    /// [`SessionCtx::take_result`] — the typed result is the source of
    /// truth; the string is produced here, at the edge, on demand.
    pub fn take_output(&self) -> String {
        self.take_result().render()
    }

    pub fn write_output(&self, s: &str) {
        self.out.lock().push_str(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batstore::{ColType, Val};

    fn ctx() -> SessionCtx {
        let mut catalog = Catalog::new();
        let mut store = BatStore::new();
        catalog
            .create_table(&mut store, "sys", "t", &[("id", ColType::Int)], &[vec![Val::Int(42)]])
            .unwrap();
        SessionCtx::new(Arc::new(RwLock::new(catalog)), Arc::new(RwLock::new(store)))
    }

    #[test]
    fn local_hooks_resolve_catalog() {
        let c = ctx();
        let hooks = c.hooks();
        let t = hooks.request(1, "sys", "t", "id").unwrap();
        let bat = hooks.pin(1, t).unwrap();
        assert_eq!(bat.count(), 1);
        hooks.unpin(1, t).unwrap();
    }

    #[test]
    fn local_hooks_missing_column() {
        let c = ctx();
        assert!(c.hooks().request(1, "sys", "t", "ghost").is_err());
    }

    #[test]
    fn pin_unknown_ticket_fails() {
        let c = ctx();
        assert!(c.hooks().pin(1, 99).is_err());
    }

    #[test]
    fn output_capture() {
        let c = ctx();
        c.write_output("hello ");
        c.write_output("world");
        assert_eq!(c.take_output(), "hello world");
        assert_eq!(c.take_output(), "", "drained");
    }

    #[test]
    fn typed_result_is_the_source_of_truth() {
        let c = ctx();
        let mut rs = batstore::ResultSet::new();
        rs.push_column(
            "sys.t",
            "id",
            "int",
            Arc::new(Bat::dense(batstore::Column::from(vec![42]))),
        );
        c.set_result(rs.clone());
        let got = c.take_result();
        assert_eq!(got, rs);
        assert!(c.take_result().is_empty(), "drained");
        // The string API is a rendering of the same result.
        c.set_result(rs);
        assert!(c.take_output().contains("[ 42 ]"));
    }

    #[test]
    fn print_text_rides_along_as_info() {
        let c = ctx();
        c.write_output("debug line\n");
        c.set_result(batstore::ResultSet::with_affected(3));
        let rs = c.take_result();
        assert_eq!(rs.info.as_deref(), Some("debug line\n"));
        assert_eq!(rs.affected, Some(3));
        assert_eq!(rs.render(), "debug line\n3 rows affected\n");
    }
}
