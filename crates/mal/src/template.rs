//! The query-template cache of paper §3.2: "An SQL query is translated
//! into a parametrized representation, called a query template, by
//! factoring out its literal constants … The query templates are kept in
//! a query cache."

use crate::ast::Program;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Normalize a SQL text into its template key: literal constants become
/// `?`, whitespace collapses, keywords lower-case. Two queries differing
/// only in constants share one plan template.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut last_space = true;
    while let Some(c) = chars.next() {
        match c {
            '\'' => {
                // String literal → ?
                for c2 in chars.by_ref() {
                    if c2 == '\'' {
                        break;
                    }
                }
                out.push('?');
                last_space = false;
            }
            '0'..='9' => {
                // Numeric literal (identifiers with digits are handled
                // below since we only get here when not inside a word).
                while matches!(chars.peek(), Some('0'..='9') | Some('.')) {
                    chars.next();
                }
                out.push('?');
                last_space = false;
            }
            c if c.is_whitespace() => {
                if !last_space {
                    out.push(' ');
                    last_space = true;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                out.push(c.to_ascii_lowercase());
                // Consume the rest of the word including digits, so
                // `table2` stays an identifier and is not templated.
                while matches!(chars.peek(), Some(c2) if c2.is_alphanumeric() || *c2 == '_') {
                    out.push(chars.next().unwrap().to_ascii_lowercase());
                }
                last_space = false;
            }
            c => {
                out.push(c);
                last_space = false;
            }
        }
    }
    out.trim().to_string()
}

/// A concurrent template cache with hit statistics.
#[derive(Default)]
pub struct TemplateCache {
    map: Mutex<HashMap<String, Arc<Program>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl TemplateCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch the cached plan for `sql`, compiling it with `compile` on
    /// miss.
    ///
    /// The cache key is the *exact* statement text, not its
    /// [`normalize_sql`] template: compiled plans currently bake literal
    /// constants in, so serving a same-shape statement with different
    /// constants from the cache would silently replay the first
    /// statement's values (wrong SELECT results, duplicated INSERT
    /// rows). Normalized-key sharing can return once plans carry real
    /// parameter slots.
    pub fn get_or_compile<E>(
        &self,
        sql: &str,
        compile: impl FnOnce() -> Result<Program, E>,
    ) -> Result<Arc<Program>, E> {
        let key = sql.trim().to_string();
        if let Some(p) = self.map.lock().get(&key) {
            *self.hits.lock() += 1;
            return Ok(Arc::clone(p));
        }
        let prog = Arc::new(compile()?);
        *self.misses.lock() += 1;
        self.map.lock().insert(key, Arc::clone(&prog));
        Ok(prog)
    }

    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_factored_out() {
        let a = normalize_sql("select x from t where a = 5 and b = 'foo'");
        let b = normalize_sql("SELECT x FROM t WHERE a = 99 AND b = 'bar'");
        assert_eq!(a, b);
        assert!(a.contains('?'));
    }

    #[test]
    fn identifiers_with_digits_preserved() {
        let a = normalize_sql("select c1 from table2");
        assert_eq!(a, "select c1 from table2");
    }

    #[test]
    fn whitespace_collapsed() {
        assert_eq!(normalize_sql("select   x\n\tfrom t"), "select x from t");
    }

    #[test]
    fn different_shapes_differ() {
        assert_ne!(normalize_sql("select x from t"), normalize_sql("select y from t"));
    }

    #[test]
    fn cache_hits_on_identical_statement_only() {
        let cache = TemplateCache::new();
        let mk = || -> Result<Program, ()> { Ok(Program::new("user", "t")) };
        cache.get_or_compile("select x from t where a = 1", mk).unwrap();
        cache.get_or_compile("  select x from t where a = 1 ", mk).unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
        // Different constants compile fresh: cached plans bake literals
        // in, so serving `a = 2` from `a = 1`'s plan would replay the
        // wrong constant.
        cache.get_or_compile("select x from t where a = 2", mk).unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_compile_error_propagates() {
        let cache = TemplateCache::new();
        let r = cache.get_or_compile("select x from t", || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets() {
        let cache = TemplateCache::new();
        cache
            .get_or_compile("select 1", || -> Result<Program, ()> { Ok(Program::new("u", "x")) })
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
    }
}
