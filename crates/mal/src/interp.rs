//! The MAL interpreter.
//!
//! Two execution modes, matching the paper:
//! * [`run_sequential`] — "The MAL program is interpreted in a linear
//!   fashion. The overhead of the interpreter is kept low, well below one
//!   µsec per instruction" (§3.2) — the micro benchmark checks ours is.
//! * [`run_dataflow`] — "The MAL plan is executed using concurrent
//!   interpreter threads following the dataflow dependencies" (§4.1).
//!   Blocking `pin` calls park only their worker; independent instruction
//!   threads keep running, which is exactly how query execution overlaps
//!   with ring data arrival.

use crate::ast::{Arg, Instr, Program};
use crate::context::SessionCtx;
use crate::error::{MalError, Result};
use crate::modules::Registry;
use crate::value::MVal;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Final variable environment after a successful run; index by `VarId`.
pub type Env = Vec<Option<MVal>>;

/// A reusable interpreter (registry + thread budget).
pub struct Interpreter {
    registry: Arc<Registry>,
    pub threads: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new()
    }
}

impl Interpreter {
    pub fn new() -> Self {
        Interpreter { registry: Arc::new(Registry::standard()), threads: 4 }
    }

    pub fn with_registry(registry: Registry) -> Self {
        Interpreter { registry: Arc::new(registry), threads: 4 }
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn run(&self, prog: &Program, ctx: &SessionCtx) -> Result<Env> {
        run_dataflow_with(prog, ctx, &self.registry, self.threads)
    }

    pub fn run_seq(&self, prog: &Program, ctx: &SessionCtx) -> Result<Env> {
        run_sequential_with(prog, ctx, &self.registry)
    }
}

fn resolve_args(instr: &Instr, env: &[Option<MVal>], prog: &Program) -> Result<Vec<MVal>> {
    instr
        .args
        .iter()
        .map(|a| match a {
            Arg::Var(v) => env[v.0 as usize]
                .clone()
                .ok_or_else(|| MalError::Undefined(prog.var_name(*v).to_string())),
            Arg::Const(c) => Ok(match c {
                crate::ast::Const::Int(v) => MVal::Int(*v),
                crate::ast::Const::Dbl(v) => MVal::Dbl(*v),
                crate::ast::Const::Str(s) => MVal::Str(s.clone()),
                crate::ast::Const::Oid(o) => MVal::Oid(*o),
                crate::ast::Const::Nil => MVal::Void,
            }),
        })
        .collect()
}

fn apply(instr: &Instr, outs: Vec<MVal>, env: &mut [Option<MVal>]) -> Result<()> {
    if outs.len() < instr.targets.len() {
        return Err(MalError::BadCall(format!(
            "{} returned {} values for {} targets",
            instr.qualified_name(),
            outs.len(),
            instr.targets.len()
        )));
    }
    for (t, v) in instr.targets.iter().zip(outs) {
        env[t.0 as usize] = Some(v);
    }
    Ok(())
}

/// Linear interpretation with the standard registry.
pub fn run_sequential(prog: &Program, ctx: &SessionCtx) -> Result<Env> {
    run_sequential_with(prog, ctx, &Registry::standard())
}

pub fn run_sequential_with(prog: &Program, ctx: &SessionCtx, registry: &Registry) -> Result<Env> {
    let mut env: Env = vec![None; prog.vars.len()];
    for instr in &prog.instrs {
        let f = registry
            .lookup(&instr.module, &instr.func)
            .ok_or_else(|| MalError::UnknownFunction(instr.qualified_name()))?;
        let args = resolve_args(instr, &env, prog)?;
        let outs = f(ctx, &args)?;
        apply(instr, outs, &mut env)?;
    }
    Ok(env)
}

/// Dependency edges between instructions, honoring both true (read-after-
/// write) and anti (write-after-read) dependencies. Bare calls — calls
/// without targets, like `sql.rsCol(X16, …)` or `datacyclotron.unpin(X6)`
/// — are treated as writers of their variable arguments, since they
/// mutate or release the value behind them.
fn dependencies(prog: &Program) -> Vec<Vec<usize>> {
    let nvars = prog.vars.len();
    let mut last_writer: Vec<Option<usize>> = vec![None; nvars];
    let mut readers_since: Vec<Vec<usize>> = vec![Vec::new(); nvars];
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); prog.instrs.len()];

    for (i, instr) in prog.instrs.iter().enumerate() {
        let mut dep = Vec::new();
        for v in instr.uses() {
            if let Some(w) = last_writer[v.0 as usize] {
                dep.push(w);
            }
            readers_since[v.0 as usize].push(i);
        }
        let is_bare = instr.targets.is_empty();
        if is_bare {
            // Anti-dependencies: run after every prior reader of each arg.
            for v in instr.uses() {
                for &r in &readers_since[v.0 as usize] {
                    if r != i {
                        dep.push(r);
                    }
                }
                last_writer[v.0 as usize] = Some(i);
                readers_since[v.0 as usize].clear();
            }
        }
        for t in &instr.targets {
            last_writer[t.0 as usize] = Some(i);
            readers_since[t.0 as usize].clear();
        }
        dep.sort_unstable();
        dep.dedup();
        deps[i] = dep;
    }
    deps
}

struct Shared {
    env: Mutex<SchedState>,
    cond: Condvar,
}

struct SchedState {
    env: Env,
    remaining: Vec<usize>,
    ready: VecDeque<usize>,
    inflight: usize,
    completed: usize,
    error: Option<MalError>,
}

/// Dataflow-parallel interpretation with the standard registry.
pub fn run_dataflow(prog: &Program, ctx: &SessionCtx, threads: usize) -> Result<Env> {
    run_dataflow_with(prog, ctx, &Registry::standard(), threads)
}

pub fn run_dataflow_with(
    prog: &Program,
    ctx: &SessionCtx,
    registry: &Registry,
    threads: usize,
) -> Result<Env> {
    let n = prog.instrs.len();
    if n == 0 {
        return Ok(vec![None; prog.vars.len()]);
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return run_sequential_with(prog, ctx, registry);
    }

    let deps = dependencies(prog);
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut remaining = vec![0usize; n];
    for (i, dep) in deps.iter().enumerate() {
        remaining[i] = dep.len();
        for &d in dep {
            dependents[d].push(i);
        }
    }
    let ready: VecDeque<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();

    let shared = Shared {
        env: Mutex::new(SchedState {
            env: vec![None; prog.vars.len()],
            remaining,
            ready,
            inflight: 0,
            completed: 0,
            error: None,
        }),
        cond: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(prog, ctx, registry, &shared, &dependents, n));
        }
    });

    let state = shared.env.into_inner();
    match state.error {
        Some(e) => Err(e),
        None => Ok(state.env),
    }
}

fn worker(
    prog: &Program,
    ctx: &SessionCtx,
    registry: &Registry,
    shared: &Shared,
    dependents: &[Vec<usize>],
    total: usize,
) {
    loop {
        let (idx, args) = {
            let mut st = shared.env.lock();
            loop {
                if st.error.is_some() || st.completed == total {
                    return;
                }
                if let Some(idx) = st.ready.pop_front() {
                    let instr = &prog.instrs[idx];
                    match resolve_args(instr, &st.env, prog) {
                        Ok(args) => {
                            st.inflight += 1;
                            break (idx, args);
                        }
                        Err(e) => {
                            st.error = Some(e);
                            shared.cond.notify_all();
                            return;
                        }
                    }
                }
                // Nothing ready: if nothing is in flight either, the plan
                // has a dependency cycle (cannot happen for straight-line
                // MAL, but guard anyway).
                if st.inflight == 0 {
                    st.error = Some(MalError::Exec("dataflow stalled (cyclic plan?)".into()));
                    shared.cond.notify_all();
                    return;
                }
                shared.cond.wait(&mut st);
            }
        };

        let instr = &prog.instrs[idx];
        let result = match registry.lookup(&instr.module, &instr.func) {
            Some(f) => f(ctx, &args),
            None => Err(MalError::UnknownFunction(instr.qualified_name())),
        };

        let mut st = shared.env.lock();
        st.inflight -= 1;
        match result {
            Err(e) => {
                st.error = Some(e);
                shared.cond.notify_all();
                return;
            }
            Ok(outs) => {
                if let Err(e) = apply(instr, outs, &mut st.env) {
                    st.error = Some(e);
                    shared.cond.notify_all();
                    return;
                }
                st.completed += 1;
                for &d in &dependents[idx] {
                    st.remaining[d] -= 1;
                    if st.remaining[d] == 0 {
                        st.ready.push_back(d);
                    }
                }
                shared.cond.notify_all();
                if st.completed == total {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, PAPER_TABLE1};
    use batstore::{BatStore, Catalog, Column};
    use parking_lot::RwLock;

    fn paper_ctx() -> SessionCtx {
        let mut catalog = Catalog::new();
        let mut store = BatStore::new();
        catalog
            .create_table_columnar(
                &mut store,
                "sys",
                "t",
                vec![("id", Column::from(vec![1, 2, 3]))],
            )
            .unwrap();
        catalog
            .create_table_columnar(
                &mut store,
                "sys",
                "c",
                vec![("t_id", Column::from(vec![2, 2, 3, 9]))],
            )
            .unwrap();
        SessionCtx::new(Arc::new(RwLock::new(catalog)), Arc::new(RwLock::new(store)))
    }

    #[test]
    fn paper_plan_runs_sequentially() {
        let prog = parse_program(PAPER_TABLE1).unwrap();
        let ctx = paper_ctx();
        run_sequential(&prog, &ctx).unwrap();
        let out = ctx.take_output();
        // select c.t_id from t, c where c.t_id = t.id → 2, 2, 3.
        assert!(out.contains("[ 2 ]"), "{out}");
        assert!(out.contains("[ 3 ]"), "{out}");
        assert_eq!(out.matches("[ 2 ]").count(), 2, "{out}");
    }

    #[test]
    fn paper_plan_runs_dataflow() {
        let prog = parse_program(PAPER_TABLE1).unwrap();
        let ctx = paper_ctx();
        run_dataflow(&prog, &ctx, 4).unwrap();
        let out = ctx.take_output();
        assert_eq!(out.matches("[ 2 ]").count(), 2, "{out}");
        assert!(out.contains("[ 3 ]"), "{out}");
    }

    #[test]
    fn dataflow_matches_sequential_output() {
        let prog = parse_program(PAPER_TABLE1).unwrap();
        let c1 = paper_ctx();
        run_sequential(&prog, &c1).unwrap();
        let c2 = paper_ctx();
        run_dataflow(&prog, &c2, 8).unwrap();
        assert_eq!(c1.take_output(), c2.take_output());
    }

    #[test]
    fn unknown_function_reported() {
        let prog = parse_program("function user.q():void;\nX1 := no.such(1);\nend q;").unwrap();
        let ctx = paper_ctx();
        let e = run_sequential(&prog, &ctx).unwrap_err();
        assert!(matches!(e, MalError::UnknownFunction(_)));
        let e = run_dataflow(&prog, &ctx, 4).unwrap_err();
        assert!(matches!(e, MalError::UnknownFunction(_)));
    }

    #[test]
    fn undefined_variable_reported() {
        let prog =
            parse_program("function user.q():void;\nX1 := bat.reverse(Xghost);\nend q;").unwrap();
        let ctx = paper_ctx();
        assert!(matches!(run_sequential(&prog, &ctx).unwrap_err(), MalError::Undefined(_)));
    }

    #[test]
    fn dependencies_order_barecalls() {
        let prog = parse_program(PAPER_TABLE1).unwrap();
        let deps = dependencies(&prog);
        // Instr 8 is sql.rsCol(X16, …) (bare); instr 10 is
        // sql.exportResult(X22, X16). exportResult must depend on rsCol.
        assert!(prog.instrs[8].is("sql", "rsCol"));
        assert!(prog.instrs[10].is("sql", "exportResult"));
        assert!(deps[10].contains(&8), "exportResult must run after rsCol: {:?}", deps[10]);
    }

    #[test]
    fn anti_dependency_for_unpin_like_calls() {
        // X1 defined; read by instr 1; bare call io.print(X1) at instr 2
        // must come after the reader at instr 1? No: print is a reader
        // itself; but a bare call is treated as a writer, so instr 2
        // depends on instr 1 (anti-dep), and instr 3 reading X1 depends
        // on instr 2.
        let prog = parse_program(
            "function user.q():void;\nX1 := io.stdout();\nX2 := io.stdout();\nio.print(X1);\nio.print(X1);\nend q;",
        )
        .unwrap();
        let deps = dependencies(&prog);
        assert_eq!(deps[2], vec![0]);
        assert!(deps[3].contains(&2), "second bare call ordered after first");
    }

    #[test]
    fn empty_program() {
        let prog = parse_program("function user.q():void;\nend q;").unwrap();
        let ctx = paper_ctx();
        assert!(run_dataflow(&prog, &ctx, 4).unwrap().is_empty());
    }

    #[test]
    fn interpreter_facade() {
        let interp = Interpreter::new();
        let prog = parse_program(PAPER_TABLE1).unwrap();
        let ctx = paper_ctx();
        interp.run(&prog, &ctx).unwrap();
        assert!(ctx.take_output().contains("[ 3 ]"));
        assert!(interp.registry().len() > 10);
    }
}
