//! MAL programs: a named function containing a straight line of
//! instructions `targets := module.func(args);`. Variables are indexed
//! into a per-program symbol table; printing reproduces the textual form
//! the paper shows in Tables 1 and 2.

use std::fmt;

/// Index into [`Program::vars`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

/// Literal constants appearing in plans.
#[derive(Clone, Debug, PartialEq)]
pub enum Const {
    Int(i64),
    Dbl(f64),
    Str(String),
    /// OID literal, printed `7@0`.
    Oid(u64),
    Nil,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Dbl(v) => write!(f, "{v:?}"),
            Const::Str(s) => write!(f, "\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
            Const::Oid(v) => write!(f, "{v}@0"),
            Const::Nil => write!(f, "nil"),
        }
    }
}

/// One instruction argument.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    Var(VarId),
    Const(Const),
}

/// One instruction: zero or more targets assigned from a call.
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    pub targets: Vec<VarId>,
    pub module: String,
    pub func: String,
    pub args: Vec<Arg>,
}

impl Instr {
    pub fn call(module: &str, func: &str, args: Vec<Arg>) -> Instr {
        Instr { targets: Vec::new(), module: module.into(), func: func.into(), args }
    }

    pub fn assign(target: VarId, module: &str, func: &str, args: Vec<Arg>) -> Instr {
        Instr { targets: vec![target], module: module.into(), func: func.into(), args }
    }

    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.module, self.func)
    }

    /// Variables this instruction reads.
    pub fn uses(&self) -> impl Iterator<Item = VarId> + '_ {
        self.args.iter().filter_map(|a| match a {
            Arg::Var(v) => Some(*v),
            Arg::Const(_) => None,
        })
    }

    pub fn is(&self, module: &str, func: &str) -> bool {
        self.module == module && self.func == func
    }
}

/// A MAL function.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Module of the function header (`user` in the paper's plans).
    pub module: String,
    /// Function name (`s1_2` in the paper's plans).
    pub name: String,
    /// Variable names; `VarId` indexes here.
    pub vars: Vec<String>,
    pub instrs: Vec<Instr>,
}

impl Program {
    pub fn new(module: &str, name: &str) -> Program {
        Program { module: module.into(), name: name.into(), vars: Vec::new(), instrs: Vec::new() }
    }

    /// Intern a variable name, returning its id (existing or fresh).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(i) = self.vars.iter().position(|v| v == name) {
            return VarId(i as u32);
        }
        self.vars.push(name.to_string());
        VarId((self.vars.len() - 1) as u32)
    }

    pub fn var_name(&self, id: VarId) -> &str {
        &self.vars[id.0 as usize]
    }

    /// Fresh variable named like MonetDB's optimizer output: the lowest
    /// unused `X<n>` (this is how the paper's Table 2 ends up with `X2`
    /// and `X3` — they were free slots in the original numbering).
    pub fn fresh_var(&mut self) -> VarId {
        let mut used = vec![false; self.vars.len() * 2 + 4];
        for v in &self.vars {
            if let Some(n) = v.strip_prefix('X').and_then(|s| s.parse::<usize>().ok()) {
                if n < used.len() {
                    used[n] = true;
                }
            }
        }
        let n = (1..used.len()).find(|&i| !used[i]).unwrap_or(used.len());
        self.var(&format!("X{n}"))
    }

    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Instruction count (the paper's interpreter-overhead unit).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function {}.{}():void;", self.module, self.name)?;
        for instr in &self.instrs {
            write!(f, "    ")?;
            match instr.targets.len() {
                0 => {}
                1 => write!(f, "{} := ", self.var_name(instr.targets[0]))?,
                _ => {
                    write!(f, "(")?;
                    for (i, t) in instr.targets.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", self.var_name(*t))?;
                    }
                    write!(f, ") := ")?;
                }
            }
            write!(f, "{}.{}(", instr.module, instr.func)?;
            for (i, a) in instr.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match a {
                    Arg::Var(v) => write!(f, "{}", self.var_name(*v))?,
                    Arg::Const(c) => write!(f, "{c}")?,
                }
            }
            writeln!(f, ");")?;
        }
        writeln!(f, "end {};", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_interning() {
        let mut p = Program::new("user", "q");
        let a = p.var("X1");
        let b = p.var("X1");
        let c = p.var("X2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(p.var_name(c), "X2");
    }

    #[test]
    fn fresh_var_fills_gaps() {
        let mut p = Program::new("user", "q");
        p.var("X1");
        p.var("X6");
        p.var("X22");
        let v2 = p.fresh_var();
        assert_eq!(p.var_name(v2), "X2");
        let v3 = p.fresh_var();
        assert_eq!(p.var_name(v3), "X3");
        let v4 = p.fresh_var();
        assert_eq!(p.var_name(v4), "X4");
    }

    #[test]
    fn display_matches_paper_style() {
        let mut p = Program::new("user", "s1_2");
        let x1 = p.var("X1");
        p.push(Instr::assign(
            x1,
            "sql",
            "bind",
            vec![
                Arg::Const(Const::Str("sys".into())),
                Arg::Const(Const::Str("t".into())),
                Arg::Const(Const::Str("id".into())),
                Arg::Const(Const::Int(0)),
            ],
        ));
        let s = p.to_string();
        assert!(s.starts_with("function user.s1_2():void;\n"));
        assert!(s.contains("X1 := sql.bind(\"sys\", \"t\", \"id\", 0);"));
        assert!(s.ends_with("end s1_2;\n"));
    }

    #[test]
    fn display_oid_and_multi_target() {
        let mut p = Program::new("user", "g");
        let a = p.var("Xg");
        let b = p.var("Xe");
        let src = p.var("X0");
        p.push(Instr {
            targets: vec![a, b],
            module: "group".into(),
            func: "new".into(),
            args: vec![Arg::Var(src), Arg::Const(Const::Oid(0))],
        });
        let s = p.to_string();
        assert!(s.contains("(Xg,Xe) := group.new(X0, 0@0);"), "{s}");
    }

    #[test]
    fn uses_iterates_vars_only() {
        let mut p = Program::new("user", "q");
        let a = p.var("A");
        let b = p.var("B");
        let i = Instr::assign(a, "algebra", "join", vec![Arg::Var(b), Arg::Const(Const::Int(3))]);
        let uses: Vec<VarId> = i.uses().collect();
        assert_eq!(uses, vec![b]);
        assert!(i.is("algebra", "join"));
        assert_eq!(i.qualified_name(), "algebra.join");
    }
}
