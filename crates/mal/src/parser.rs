//! Parser for the textual MAL subset the paper prints. Grammar:
//!
//! ```text
//! program  := "function" qname "(" ")" [":" type] ";" instr* "end" name ";"
//! instr    := [targets ":="] qname "(" args ")" ";"
//! targets  := var | "(" var ("," var)* ")"
//! args     := [arg ("," arg)*]
//! arg      := var | const
//! const    := int | float | string | oid | "nil"
//! oid      := int "@" int
//! ```
//! Comments run from `#` to end of line.

use crate::ast::{Arg, Const, Instr, Program};
use crate::error::{MalError, Result};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Dbl(f64),
    Str(String),
    Oid(u64),
    Assign, // :=
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    Dot,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn err(&self, msg: impl Into<String>) -> MalError {
        MalError::Parse { line: self.line, msg: msg.into() }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek_byte() {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'#' => {
                    while let Some(b) = self.peek_byte() {
                        self.pos += 1;
                        if b == b'\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>> {
        self.skip_ws();
        let line = self.line;
        let Some(b) = self.peek_byte() else { return Ok(None) };
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b':' => {
                self.pos += 1;
                if self.peek_byte() == Some(b'=') {
                    self.pos += 1;
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek_byte() {
                        None => return Err(self.err("unterminated string")),
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek_byte() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                other => return Err(self.err(format!("bad escape: {other:?}"))),
                            }
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Consume one UTF-8 scalar.
                            let rest = &self.src[self.pos..];
                            let s_rest =
                                std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                            let ch = s_rest.chars().next().unwrap();
                            s.push(ch);
                            self.pos += ch.len_utf8();
                        }
                    }
                }
                Tok::Str(s)
            }
            b'-' | b'0'..=b'9' => self.lex_number()?,
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = self.pos;
                while let Some(b) = self.peek_byte() {
                    if b.is_ascii_alphanumeric() || b == b'_' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
                Tok::Ident(word)
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some((tok, line)))
    }

    fn lex_number(&mut self) -> Result<Tok> {
        let start = self.pos;
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // OID literal `N@0`.
        if self.peek_byte() == Some(b'@') {
            let digits = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let n: u64 =
                digits.parse().map_err(|_| self.err(format!("bad oid literal: {digits}")))?;
            self.pos += 1; // @
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            return Ok(Tok::Oid(n));
        }
        let mut is_float = false;
        if self.peek_byte() == Some(b'.') && matches!(self.src.get(self.pos + 1), Some(b'0'..=b'9'))
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek_byte(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek_byte(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Tok::Dbl).map_err(|e| self.err(format!("bad float: {e}")))
        } else {
            text.parse::<i64>().map(Tok::Int).map_err(|e| self.err(format!("bad int: {e}")))
        }
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|&(_, l)| l).unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> MalError {
        MalError::Parse { line: self.line(), msg: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }
}

/// Parse one MAL function.
pub fn parse_program(src: &str) -> Result<Program> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };

    // Header: function mod.name():type;
    match p.next()? {
        Tok::Ident(kw) if kw == "function" => {}
        other => return Err(p.err(format!("expected 'function', got {other:?}"))),
    }
    let module = p.ident()?;
    p.expect(&Tok::Dot)?;
    let name = p.ident()?;
    p.expect(&Tok::LParen)?;
    p.expect(&Tok::RParen)?;
    if p.peek() == Some(&Tok::Colon) {
        p.next()?; // :
        p.ident()?; // return type, ignored
    }
    p.expect(&Tok::Semi)?;

    let mut prog = Program::new(&module, &name);

    loop {
        // end name;
        if let Some(Tok::Ident(kw)) = p.peek() {
            if kw == "end" {
                p.next()?;
                let end_name = p.ident()?;
                if end_name != prog.name {
                    return Err(p.err(format!(
                        "end name '{end_name}' does not match function '{}'",
                        prog.name
                    )));
                }
                p.expect(&Tok::Semi)?;
                break;
            }
        }
        let raw = parse_instr(&mut p)?;
        let instr = raw.intern(&mut prog)?;
        prog.push(instr);
    }
    Ok(prog)
}

/// Pre-interned instruction: names not yet turned into VarIds.
struct RawInstr {
    targets: Vec<String>,
    module: String,
    func: String,
    args: Vec<RawArg>,
}

enum RawArg {
    Var(String),
    Const(Const),
}

impl RawInstr {
    fn intern(self, prog: &mut Program) -> Result<Instr> {
        Ok(Instr {
            targets: self.targets.iter().map(|t| prog.var(t)).collect(),
            module: self.module,
            func: self.func,
            args: self
                .args
                .into_iter()
                .map(|a| match a {
                    RawArg::Var(name) => Arg::Var(prog.var(&name)),
                    RawArg::Const(c) => Arg::Const(c),
                })
                .collect(),
        })
    }
}

fn parse_instr(p: &mut Parser) -> Result<RawInstr> {
    // Either: targets := call ;   or:   call ;
    // Look ahead to find ":=".
    let mut targets: Vec<String> = Vec::new();
    let checkpoint = p.pos;
    let mut is_assign = false;

    match p.peek() {
        Some(Tok::LParen) => {
            // (a,b) := …
            p.next()?;
            loop {
                targets.push(p.ident()?);
                match p.next()? {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => return Err(p.err(format!("expected ',' or ')', got {other:?}"))),
                }
            }
            p.expect(&Tok::Assign)?;
            is_assign = true;
        }
        Some(Tok::Ident(_)) => {
            let first = p.ident()?;
            if p.peek() == Some(&Tok::Assign) {
                p.next()?;
                targets.push(first);
                is_assign = true;
            } else {
                // Not an assignment: rewind, it is a bare call.
                p.pos = checkpoint;
            }
        }
        other => return Err(p.err(format!("expected instruction, got {other:?}"))),
    }
    let _ = is_assign;

    let module = p.ident()?;
    p.expect(&Tok::Dot)?;
    let func = p.ident()?;
    p.expect(&Tok::LParen)?;
    let mut args = Vec::new();
    if p.peek() != Some(&Tok::RParen) {
        loop {
            let arg = match p.next()? {
                Tok::Ident(s) if s == "nil" => RawArg::Const(Const::Nil),
                Tok::Ident(s) => RawArg::Var(s),
                Tok::Int(v) => RawArg::Const(Const::Int(v)),
                Tok::Dbl(v) => RawArg::Const(Const::Dbl(v)),
                Tok::Str(s) => RawArg::Const(Const::Str(s)),
                Tok::Oid(v) => RawArg::Const(Const::Oid(v)),
                other => return Err(p.err(format!("bad argument: {other:?}"))),
            };
            args.push(arg);
            match p.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => return Err(p.err(format!("expected ',' or ')', got {other:?}"))),
            }
        }
    } else {
        p.next()?; // consume ')'
    }
    p.expect(&Tok::Semi)?;
    Ok(RawInstr { targets, module, func, args })
}

/// The paper's Table 1 plan, as shipped text; used in tests and the plan
/// reproduction harness.
pub const PAPER_TABLE1: &str = r#"
function user.s1_2():void;
    X1 := sql.bind("sys","t","id",0);
    X6 := sql.bind("sys","c","t_id",0);
    X9 := bat.reverse(X6);
    X10 := algebra.join(X1, X9);
    X13 := algebra.markT(X10,0@0);
    X14 := bat.reverse(X13);
    X15 := algebra.join(X14, X1);
    X16 := sql.resultSet(1,1,X15);
    sql.rsCol(X16,"sys.c","t_id","int",32,0,X15);
    X22 := io.stdout();
    sql.exportResult(X22,X16);
end s1_2;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Arg;

    #[test]
    fn parses_paper_table1() {
        let p = parse_program(PAPER_TABLE1).unwrap();
        assert_eq!(p.module, "user");
        assert_eq!(p.name, "s1_2");
        assert_eq!(p.len(), 11);
        assert!(p.instrs[0].is("sql", "bind"));
        assert_eq!(p.instrs[0].args.len(), 4);
        assert!(p.instrs[8].is("sql", "rsCol"));
        assert!(p.instrs[8].targets.is_empty(), "bare call has no target");
    }

    #[test]
    fn round_trip_print_parse() {
        let p1 = parse_program(PAPER_TABLE1).unwrap();
        let text = p1.to_string();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.name, p2.name);
        assert_eq!(p1.len(), p2.len());
        for (a, b) in p1.instrs.iter().zip(&p2.instrs) {
            assert_eq!(a.qualified_name(), b.qualified_name());
            assert_eq!(a.args.len(), b.args.len());
        }
    }

    #[test]
    fn oid_literals() {
        let p = parse_program("function user.q():void;\nX1 := algebra.markT(X0, 42@0);\nend q;")
            .unwrap();
        assert_eq!(p.instrs[0].args[1], Arg::Const(Const::Oid(42)));
    }

    #[test]
    fn multi_target() {
        let p =
            parse_program("function user.q():void;\n(Xg,Xe) := group.new(X0);\nend q;").unwrap();
        assert_eq!(p.instrs[0].targets.len(), 2);
        assert_eq!(p.var_name(p.instrs[0].targets[1]), "Xe");
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "# header comment\nfunction user.q():void;\n  # inner\n  X1 := io.stdout();\nend q;  # trailing",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn string_escapes() {
        let p = parse_program(
            r#"function user.q():void;
X1 := io.print("a\"b\\c");
end q;"#,
        )
        .unwrap();
        assert_eq!(p.instrs[0].args[0], Arg::Const(Const::Str("a\"b\\c".into())));
    }

    #[test]
    fn numeric_literals() {
        let p =
            parse_program("function user.q():void;\nX1 := calc.f(-5, 2.5, 1e3);\nend q;").unwrap();
        assert_eq!(p.instrs[0].args[0], Arg::Const(Const::Int(-5)));
        assert_eq!(p.instrs[0].args[1], Arg::Const(Const::Dbl(2.5)));
        assert_eq!(p.instrs[0].args[2], Arg::Const(Const::Dbl(1000.0)));
    }

    #[test]
    fn error_reports_line() {
        let err =
            parse_program("function user.q():void;\nX1 := bad syntax here\nend q;").unwrap_err();
        match err {
            MalError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn mismatched_end_rejected() {
        assert!(parse_program("function user.q():void;\nend other;").is_err());
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(parse_program("function user.q():void;\nX1 := io.print(\"oops);\nend q;").is_err());
    }

    #[test]
    fn empty_args() {
        let p = parse_program("function user.q():void;\nX1 := io.stdout();\nend q;").unwrap();
        assert!(p.instrs[0].args.is_empty());
    }
}
