//! The built-in MAL modules, bound to the `batstore` kernel and the Data
//! Cyclotron hooks. Function names follow MonetDB's `module.function`
//! convention as printed in the paper's plans.

use crate::context::SessionCtx;
use crate::error::{MalError, Result};
use crate::value::{MVal, ResultSet};
use batstore::{ops, Bat, Val};
use std::collections::HashMap;
use std::sync::Arc;

/// A native operator implementation. Receives resolved argument values,
/// returns the values for the instruction's targets (usually one).
pub type NativeFn = Arc<dyn Fn(&SessionCtx, &[MVal]) -> Result<Vec<MVal>> + Send + Sync>;

/// The module registry: `(module, function) → implementation`.
pub struct Registry {
    fns: HashMap<(String, String), NativeFn>,
}

impl Registry {
    pub fn empty() -> Self {
        Registry { fns: HashMap::new() }
    }

    pub fn register(
        &mut self,
        module: &str,
        func: &str,
        f: impl Fn(&SessionCtx, &[MVal]) -> Result<Vec<MVal>> + Send + Sync + 'static,
    ) {
        self.fns.insert((module.to_string(), func.to_string()), Arc::new(f));
    }

    pub fn lookup(&self, module: &str, func: &str) -> Option<&NativeFn> {
        // Avoid allocating on the hot path: (module, func) keyed lookup
        // via a borrowed tuple is not possible with String keys, so keep a
        // scratch key. Lookup cost is dominated by the hash anyway.
        self.fns.get(&(module.to_string(), func.to_string()))
    }

    pub fn len(&self) -> usize {
        self.fns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The standard library: everything the paper's plans and the SQL
    /// front-end emit.
    pub fn standard() -> Self {
        let mut r = Registry::empty();
        register_sql(&mut r);
        register_bat_algebra(&mut r);
        register_aggregates(&mut r);
        register_io(&mut r);
        register_datacyclotron(&mut r);
        r
    }
}

// ---- argument helpers -------------------------------------------------

fn want(args: &[MVal], n: usize, name: &str) -> Result<()> {
    if args.len() != n {
        return Err(MalError::BadCall(format!("{name}: expected {n} args, got {}", args.len())));
    }
    Ok(())
}

fn arg_bat<'a>(args: &'a [MVal], i: usize, name: &str) -> Result<&'a Arc<Bat>> {
    args[i].as_bat().ok_or_else(|| {
        MalError::BadCall(format!("{name}: arg {i} must be a BAT, got {:?}", args[i]))
    })
}

fn arg_int(args: &[MVal], i: usize, name: &str) -> Result<i64> {
    args[i]
        .as_int()
        .ok_or_else(|| MalError::BadCall(format!("{name}: arg {i} must be int, got {:?}", args[i])))
}

fn arg_str<'a>(args: &'a [MVal], i: usize, name: &str) -> Result<&'a str> {
    args[i]
        .as_str()
        .ok_or_else(|| MalError::BadCall(format!("{name}: arg {i} must be str, got {:?}", args[i])))
}

/// Constant MAL value → kernel scalar for selections.
fn arg_val(args: &[MVal], i: usize, name: &str) -> Result<Val> {
    Ok(match &args[i] {
        MVal::Int(v) => {
            // Narrow to Int when it fits so comparisons against int
            // columns take the exact-type fast path.
            if let Ok(small) = i32::try_from(*v) {
                Val::Int(small)
            } else {
                Val::Lng(*v)
            }
        }
        MVal::Dbl(v) => Val::Dbl(*v),
        MVal::Str(s) => Val::Str(s.clone()),
        MVal::Oid(o) => Val::Oid(*o),
        MVal::Bool(b) => Val::Bool(*b),
        other => {
            return Err(MalError::BadCall(format!("{name}: arg {i} must be scalar, got {other:?}")))
        }
    })
}

/// Decode the flat predicate encoding the SQL front-end emits into
/// `sql.update`/`sql.delete` calls, starting at arg `i`:
///
/// ```text
/// "cmp", column, op-symbol, literal
/// "between", column, lo, hi
/// "in", column, n, v1, …, vn
/// ```
fn parse_predicates(
    args: &[MVal],
    mut i: usize,
    name: &str,
) -> Result<Vec<batstore::RowPredicate>> {
    use batstore::RowPredicate;
    let mut preds = Vec::new();
    while i < args.len() {
        let kind = arg_str(args, i, name)?;
        match kind {
            "cmp" => {
                if args.len() < i + 4 {
                    return Err(MalError::BadCall(format!("{name}: truncated cmp predicate")));
                }
                let column = arg_str(args, i + 1, name)?.to_string();
                let sym = arg_str(args, i + 2, name)?;
                let op = batstore::ops::CmpOp::from_symbol(sym)
                    .ok_or_else(|| MalError::BadCall(format!("{name}: bad op '{sym}'")))?;
                let value = arg_val(args, i + 3, name)?;
                preds.push(RowPredicate::Cmp { column, op, value });
                i += 4;
            }
            "between" => {
                if args.len() < i + 4 {
                    return Err(MalError::BadCall(format!("{name}: truncated between predicate")));
                }
                preds.push(RowPredicate::Between {
                    column: arg_str(args, i + 1, name)?.to_string(),
                    lo: arg_val(args, i + 2, name)?,
                    hi: arg_val(args, i + 3, name)?,
                });
                i += 4;
            }
            "in" => {
                if args.len() < i + 3 {
                    return Err(MalError::BadCall(format!("{name}: truncated in predicate")));
                }
                let column = arg_str(args, i + 1, name)?.to_string();
                let n = arg_int(args, i + 2, name)?.max(0) as usize;
                if args.len() < i + 3 + n {
                    return Err(MalError::BadCall(format!("{name}: in-list claims {n} values")));
                }
                let mut values = Vec::with_capacity(n);
                for k in 0..n {
                    values.push(arg_val(args, i + 3 + k, name)?);
                }
                preds.push(RowPredicate::InList { column, values });
                i += 3 + n;
            }
            other => {
                return Err(MalError::BadCall(format!("{name}: unknown predicate kind '{other}'")))
            }
        }
    }
    Ok(preds)
}

fn one(v: MVal) -> Result<Vec<MVal>> {
    Ok(vec![v])
}

fn bat(b: Bat) -> Result<Vec<MVal>> {
    one(MVal::Bat(Arc::new(b)))
}

/// Row positions in the dense BAT `base` named by the head oids of a
/// selection result over it (sorted, deduplicated).
fn selection_rows(base: &Bat, sel: &Bat, name: &str) -> Result<Vec<usize>> {
    let seq = match base.head() {
        batstore::Column::Void { seq, .. } => *seq,
        _ => return Err(MalError::BadCall(format!("{name}: base BAT must be dense"))),
    };
    let mut rows = Vec::with_capacity(sel.count());
    for i in 0..sel.count() {
        let oid = sel
            .head()
            .oid_at(i)
            .ok_or_else(|| MalError::BadCall(format!("{name}: selection head must carry oids")))?;
        if oid < seq {
            return Err(MalError::BadCall(format!(
                "{name}: oid {oid} below the base sequence {seq}"
            )));
        }
        rows.push((oid - seq) as usize);
    }
    rows.sort_unstable();
    rows.dedup();
    Ok(rows)
}

// ---- sql module -------------------------------------------------------

fn register_sql(r: &mut Registry) {
    // sql.bind(schema, table, column, access) — resolve a persistent BAT.
    r.register("sql", "bind", |ctx, args| {
        want(args, 4, "sql.bind")?;
        let (schema, table, column) = (
            arg_str(args, 0, "sql.bind")?,
            arg_str(args, 1, "sql.bind")?,
            arg_str(args, 2, "sql.bind")?,
        );
        let key = ctx.catalog.read().bind(schema, table, column)?;
        let b = ctx.store.read().get(key)?;
        one(MVal::Bat(b))
    });

    // sql.createTable(schema, table, "name:type,…") — DDL routed through
    // the Data Cyclotron seam so ring nodes take ownership of the new
    // (empty) column fragments and replicate the metadata.
    r.register("sql", "createTable", |ctx, args| {
        want(args, 3, "sql.createTable")?;
        let (schema, table, spec) = (
            arg_str(args, 0, "sql.createTable")?,
            arg_str(args, 1, "sql.createTable")?,
            arg_str(args, 2, "sql.createTable")?,
        );
        let mut cols = Vec::new();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (name, ty) = part
                .split_once(':')
                .ok_or_else(|| MalError::BadCall(format!("bad column spec '{part}'")))?;
            let ty = batstore::ColType::from_name(ty)
                .ok_or_else(|| MalError::BadCall(format!("unknown column type '{ty}'")))?;
            cols.push((name.to_string(), ty));
        }
        ctx.hooks().create_table(ctx.query_id, schema, table, &cols)?;
        ctx.set_result(batstore::ResultSet::with_info(format!("table {schema}.{table} created\n")));
        Ok(vec![])
    });

    // sql.append(schema, table, "c1,c2,…", bat1, bat2, …) — one call per
    // INSERT so the row batch reaches the seam atomically.
    r.register("sql", "append", |ctx, args| {
        if args.len() < 4 {
            return Err(MalError::BadCall("sql.append: expected at least 4 args".into()));
        }
        let (schema, table, names) = (
            arg_str(args, 0, "sql.append")?,
            arg_str(args, 1, "sql.append")?,
            arg_str(args, 2, "sql.append")?,
        );
        let names: Vec<&str> = names.split(',').filter(|n| !n.is_empty()).collect();
        if names.len() != args.len() - 3 {
            return Err(MalError::BadCall(format!(
                "sql.append: {} column names but {} BATs",
                names.len(),
                args.len() - 3
            )));
        }
        let mut cols = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            let b = arg_bat(args, i + 3, "sql.append")?;
            cols.push((name.to_string(), b.tail().clone()));
        }
        let n = ctx.hooks().append_rows(ctx.query_id, schema, table, &cols)?;
        ctx.set_result(batstore::ResultSet::with_affected(n));
        Ok(vec![])
    });

    // sql.update(schema, table, "c1,c2,…", v1, v2, …, <predicates>) —
    // one call per UPDATE statement. The assignment values follow the
    // column-name list in order; the flat predicate encoding (see
    // `parse_predicates`) carries the WHERE conjuncts to the seam, which
    // routes the *logical* mutation to the fragment owner (§6.4).
    r.register("sql", "update", |ctx, args| {
        if args.len() < 4 {
            return Err(MalError::BadCall("sql.update: expected at least 4 args".into()));
        }
        let (schema, table, names) = (
            arg_str(args, 0, "sql.update")?,
            arg_str(args, 1, "sql.update")?,
            arg_str(args, 2, "sql.update")?,
        );
        let names: Vec<&str> = names.split(',').filter(|n| !n.is_empty()).collect();
        if names.is_empty() {
            return Err(MalError::BadCall("sql.update: empty assignment list".into()));
        }
        if args.len() < 3 + names.len() {
            return Err(MalError::BadCall(format!(
                "sql.update: {} assignments but only {} args",
                names.len(),
                args.len()
            )));
        }
        let mut assigns = Vec::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            assigns.push((name.to_string(), arg_val(args, i + 3, "sql.update")?));
        }
        let preds = parse_predicates(args, 3 + names.len(), "sql.update")?;
        let n = ctx.hooks().update_rows(ctx.query_id, schema, table, &assigns, &preds)?;
        ctx.set_result(batstore::ResultSet::with_affected(n));
        Ok(vec![])
    });

    // sql.delete(schema, table, <predicates>) — one call per DELETE
    // statement; no predicates means every row.
    r.register("sql", "delete", |ctx, args| {
        if args.len() < 2 {
            return Err(MalError::BadCall("sql.delete: expected at least 2 args".into()));
        }
        let (schema, table) = (arg_str(args, 0, "sql.delete")?, arg_str(args, 1, "sql.delete")?);
        let preds = parse_predicates(args, 2, "sql.delete")?;
        let n = ctx.hooks().delete_rows(ctx.query_id, schema, table, &preds)?;
        ctx.set_result(batstore::ResultSet::with_affected(n));
        Ok(vec![])
    });

    // sql.sysview(view, "c1,c2,…"|"*") — materialize a read-only `dc.*`
    // system view (stats/latency/trace) from the node's live telemetry
    // through the seam, optionally projecting a subset of its columns in
    // the requested order.
    r.register("sql", "sysview", |ctx, args| {
        want(args, 2, "sql.sysview")?;
        let (view, proj) = (arg_str(args, 0, "sql.sysview")?, arg_str(args, 1, "sql.sysview")?);
        let rs = ctx.hooks().sys_view(ctx.query_id, view)?;
        let rs = if proj == "*" {
            rs
        } else {
            let mut out = batstore::ResultSet::new();
            for name in proj.split(',').filter(|c| !c.is_empty()) {
                let col = rs.columns.iter().find(|c| c.name == name).ok_or_else(|| {
                    MalError::BadCall(format!("dc.{view} has no column '{name}'"))
                })?;
                out.columns.push(col.clone());
            }
            out
        };
        ctx.set_result(rs);
        Ok(vec![])
    });

    // sql.resultSet(ncols, special, b) — allocate a result set.
    r.register("sql", "resultSet", |_ctx, args| {
        if args.len() < 3 {
            return Err(MalError::BadCall("sql.resultSet: expected 3 args".into()));
        }
        one(MVal::ResultSet(ResultSet::new()))
    });

    // sql.rsCol(rs, table, column, type, digits, scale, b) — append a column.
    r.register("sql", "rsCol", |_ctx, args| {
        want(args, 7, "sql.rsCol")?;
        let MVal::ResultSet(rs) = &args[0] else {
            return Err(MalError::BadCall("sql.rsCol: arg 0 must be a result set".into()));
        };
        let table = arg_str(args, 1, "sql.rsCol")?;
        let column = arg_str(args, 2, "sql.rsCol")?;
        let ty = arg_str(args, 3, "sql.rsCol")?;
        let data = arg_bat(args, 6, "sql.rsCol")?;
        rs.add_column(table, column, ty, Arc::clone(data));
        Ok(vec![])
    });

    // sql.exportResult(stream, rs) — publish the typed result to the
    // session. No text is produced here: the session's consumer renders
    // (or wires) the columns as it sees fit.
    r.register("sql", "exportResult", |ctx, args| {
        want(args, 2, "sql.exportResult")?;
        let MVal::ResultSet(rs) = &args[1] else {
            return Err(MalError::BadCall("sql.exportResult: arg 1 must be a result set".into()));
        };
        ctx.set_result(rs.snapshot());
        Ok(vec![])
    });
}

// ---- bat / algebra modules --------------------------------------------

fn register_bat_algebra(r: &mut Registry) {
    r.register("bat", "reverse", |_ctx, args| {
        want(args, 1, "bat.reverse")?;
        bat(ops::reverse(arg_bat(args, 0, "bat.reverse")?))
    });

    r.register("bat", "mirror", |_ctx, args| {
        want(args, 1, "bat.mirror")?;
        bat(ops::mirror(arg_bat(args, 0, "bat.mirror")?))
    });

    // bat.pack(v[, typename]) — a single-BUN BAT from a scalar; used to
    // ship whole-column aggregates into result sets. The optional type
    // name pins the column to the *declared* aggregate type (COUNT is
    // always `lng`), so a typed result's schema does not wobble with the
    // magnitude of the value.
    r.register("bat", "pack", |_ctx, args| {
        if args.is_empty() || args.len() > 2 {
            return Err(MalError::BadCall("bat.pack: expected 1 or 2 args".into()));
        }
        let v = arg_val(args, 0, "bat.pack")?;
        let ty = match args.get(1) {
            Some(_) => {
                let name = arg_str(args, 1, "bat.pack")?;
                batstore::ColType::from_name(name)
                    .ok_or_else(|| MalError::BadCall(format!("bat.pack: unknown type '{name}'")))?
            }
            None => {
                v.col_type().ok_or_else(|| MalError::BadCall("bat.pack: nil has no type".into()))?
            }
        };
        let mut col = batstore::Column::empty(ty);
        col.push(&v)?;
        bat(Bat::dense(col))
    });

    // bat.new(typename) — empty dense BAT of the named tail type; the
    // seed of INSERT codegen's per-column row batches, so every literal
    // coerces into the declared column type.
    r.register("bat", "new", |_ctx, args| {
        want(args, 1, "bat.new")?;
        let ty = arg_str(args, 0, "bat.new")?;
        let ty = batstore::ColType::from_name(ty)
            .ok_or_else(|| MalError::BadCall(format!("bat.new: unknown type '{ty}'")))?;
        bat(Bat::empty(ty))
    });

    // bat.literal(typename, v1, …, vn) — a dense BAT of the listed
    // values. INSERT codegen emits one per column so an n-row batch is
    // a single O(n) instruction (a bat.append chain would be O(n²)).
    r.register("bat", "literal", |_ctx, args| {
        if args.is_empty() {
            return Err(MalError::BadCall("bat.literal: expected a type name".into()));
        }
        let ty = arg_str(args, 0, "bat.literal")?;
        let ty = batstore::ColType::from_name(ty)
            .ok_or_else(|| MalError::BadCall(format!("bat.literal: unknown type '{ty}'")))?;
        let mut col = batstore::Column::empty(ty);
        for i in 1..args.len() {
            col.push(&arg_val(args, i, "bat.literal")?)?;
        }
        bat(Bat::dense(col))
    });

    // bat.append(b, v) — functional append: a new dense BAT with `v` at
    // the end.
    r.register("bat", "append", |_ctx, args| {
        want(args, 2, "bat.append")?;
        let b = arg_bat(args, 0, "bat.append")?;
        let v = arg_val(args, 1, "bat.append")?;
        let mut add = batstore::Column::empty(b.tail_type());
        add.push(&v)?;
        bat(b.extend_tail(&add)?)
    });

    // bat.replace(b, sel, v) — selective mutation: a new dense BAT with
    // `v` written at the rows `sel` picked out of `b` (a selection
    // result whose head oids reference `b`'s rows). The kernel behind
    // the UPDATE sink's owner-side rewrite.
    r.register("bat", "replace", |_ctx, args| {
        want(args, 3, "bat.replace")?;
        let b = arg_bat(args, 0, "bat.replace")?;
        let sel = arg_bat(args, 1, "bat.replace")?;
        let v = arg_val(args, 2, "bat.replace")?;
        let rows = selection_rows(b, sel, "bat.replace")?;
        bat(ops::scatter_const(b, &rows, &v)?)
    });

    // bat.delete(b, sel) — selective deletion: a new dense BAT without
    // the rows `sel` picked out of `b`. The kernel behind the DELETE
    // sink's owner-side shrink.
    r.register("bat", "delete", |_ctx, args| {
        want(args, 2, "bat.delete")?;
        let b = arg_bat(args, 0, "bat.delete")?;
        let sel = arg_bat(args, 1, "bat.delete")?;
        let rows = selection_rows(b, sel, "bat.delete")?;
        bat(ops::erase_rows(b, &rows)?)
    });

    r.register("algebra", "select", |_ctx, args| {
        want(args, 3, "algebra.select")?;
        let b = arg_bat(args, 0, "algebra.select")?;
        let lo = arg_val(args, 1, "algebra.select")?;
        let hi = arg_val(args, 2, "algebra.select")?;
        bat(ops::select_range(b, &lo, &hi)?)
    });

    r.register("algebra", "uselect", |_ctx, args| {
        want(args, 2, "algebra.uselect")?;
        let b = arg_bat(args, 0, "algebra.uselect")?;
        let v = arg_val(args, 1, "algebra.uselect")?;
        bat(ops::uselect(b, &v)?)
    });

    // algebra.thetauselect(b, v, "<=") — general comparison select.
    r.register("algebra", "thetauselect", |_ctx, args| {
        want(args, 3, "algebra.thetauselect")?;
        let b = arg_bat(args, 0, "algebra.thetauselect")?;
        let v = arg_val(args, 1, "algebra.thetauselect")?;
        let sym = arg_str(args, 2, "algebra.thetauselect")?;
        let op = ops::CmpOp::from_symbol(sym)
            .ok_or_else(|| MalError::BadCall(format!("thetauselect: bad op '{sym}'")))?;
        bat(ops::theta_select(b, op, &v)?)
    });

    r.register("algebra", "join", |_ctx, args| {
        want(args, 2, "algebra.join")?;
        bat(ops::join(arg_bat(args, 0, "algebra.join")?, arg_bat(args, 1, "algebra.join")?)?)
    });

    r.register("algebra", "leftjoin", |_ctx, args| {
        want(args, 2, "algebra.leftjoin")?;
        bat(ops::leftjoin(
            arg_bat(args, 0, "algebra.leftjoin")?,
            arg_bat(args, 1, "algebra.leftjoin")?,
        )?)
    });

    r.register("algebra", "semijoin", |_ctx, args| {
        want(args, 2, "algebra.semijoin")?;
        bat(ops::semijoin(
            arg_bat(args, 0, "algebra.semijoin")?,
            arg_bat(args, 1, "algebra.semijoin")?,
        )?)
    });

    r.register("algebra", "kdifference", |_ctx, args| {
        want(args, 2, "algebra.kdifference")?;
        bat(ops::kdifference(
            arg_bat(args, 0, "algebra.kdifference")?,
            arg_bat(args, 1, "algebra.kdifference")?,
        )?)
    });

    r.register("algebra", "kunion", |_ctx, args| {
        want(args, 2, "algebra.kunion")?;
        bat(ops::kunion(arg_bat(args, 0, "algebra.kunion")?, arg_bat(args, 1, "algebra.kunion")?)?)
    });

    // algebra.tunique(b) — distinct tail values (SELECT DISTINCT kernel).
    r.register("algebra", "tunique", |_ctx, args| {
        want(args, 1, "algebra.tunique")?;
        bat(ops::distinct(arg_bat(args, 0, "algebra.tunique")?))
    });

    r.register("algebra", "markT", |_ctx, args| {
        want(args, 2, "algebra.markT")?;
        let b = arg_bat(args, 0, "algebra.markT")?;
        let base = arg_int(args, 1, "algebra.markT")? as u64;
        bat(ops::mark_tail(b, base))
    });

    r.register("algebra", "markH", |_ctx, args| {
        want(args, 2, "algebra.markH")?;
        let b = arg_bat(args, 0, "algebra.markH")?;
        let base = arg_int(args, 1, "algebra.markH")? as u64;
        bat(ops::mark_head(b, base))
    });

    r.register("algebra", "slice", |_ctx, args| {
        want(args, 3, "algebra.slice")?;
        let b = arg_bat(args, 0, "algebra.slice")?;
        let lo = arg_int(args, 1, "algebra.slice")?.max(0) as usize;
        let hi = arg_int(args, 2, "algebra.slice")?.max(0) as usize;
        bat(ops::slice(b, lo, hi))
    });

    r.register("algebra", "sortTail", |_ctx, args| {
        want(args, 1, "algebra.sortTail")?;
        bat(ops::sort_tail(arg_bat(args, 0, "algebra.sortTail")?, false))
    });

    r.register("algebra", "sortReverseTail", |_ctx, args| {
        want(args, 1, "algebra.sortReverseTail")?;
        bat(ops::sort_tail(arg_bat(args, 0, "algebra.sortReverseTail")?, true))
    });

    // algebra.firstn(b, n, asc) — ORDER BY + LIMIT kernel.
    r.register("algebra", "firstn", |_ctx, args| {
        want(args, 3, "algebra.firstn")?;
        let b = arg_bat(args, 0, "algebra.firstn")?;
        let n = arg_int(args, 1, "algebra.firstn")?.max(0) as usize;
        let asc = arg_int(args, 2, "algebra.firstn")? != 0;
        bat(ops::topn(b, n, !asc)?)
    });

    // algebra.project(b, const) — constant tail aligned with b.
    r.register("algebra", "project", |_ctx, args| {
        want(args, 2, "algebra.project")?;
        let b = arg_bat(args, 0, "algebra.project")?;
        let v = arg_val(args, 1, "algebra.project")?;
        bat(ops::project_const(b, &v)?)
    });
}

// ---- aggregates -------------------------------------------------------

fn register_aggregates(r: &mut Registry) {
    r.register("aggr", "count", |_ctx, args| {
        want(args, 1, "aggr.count")?;
        one(MVal::Int(ops::count(arg_bat(args, 0, "aggr.count")?) as i64))
    });

    r.register("aggr", "sum", |_ctx, args| {
        want(args, 1, "aggr.sum")?;
        one(MVal::from_val(ops::sum(arg_bat(args, 0, "aggr.sum")?)?))
    });

    r.register("aggr", "min", |_ctx, args| {
        want(args, 1, "aggr.min")?;
        one(MVal::from_val(ops::min(arg_bat(args, 0, "aggr.min")?)))
    });

    r.register("aggr", "max", |_ctx, args| {
        want(args, 1, "aggr.max")?;
        one(MVal::from_val(ops::max(arg_bat(args, 0, "aggr.max")?)))
    });

    r.register("aggr", "avg", |_ctx, args| {
        want(args, 1, "aggr.avg")?;
        one(MVal::from_val(ops::avg(arg_bat(args, 0, "aggr.avg")?)?))
    });

    // group.new(b) → (grp: head→groupid, ext: groupid→representative).
    r.register("group", "new", |_ctx, args| {
        want(args, 1, "group.new")?;
        let (grp, ext) = ops::group_by(arg_bat(args, 0, "group.new")?);
        Ok(vec![MVal::Bat(Arc::new(grp)), MVal::Bat(Arc::new(ext))])
    });

    // group.derive(b, grp) → (grp', ext'): refine a grouping by a further
    // column (multi-column GROUP BY). ext' maps group → representative
    // row position.
    r.register("group", "derive", |_ctx, args| {
        want(args, 2, "group.derive")?;
        let (grp, ext) = ops::group_derive(
            arg_bat(args, 0, "group.derive")?,
            arg_bat(args, 1, "group.derive")?,
        )?;
        Ok(vec![MVal::Bat(Arc::new(grp)), MVal::Bat(Arc::new(ext))])
    });

    // Grouped aggregates: aggr.<f>For(vals, grp, ngroups).
    r.register("aggr", "sumFor", |_ctx, args| {
        want(args, 3, "aggr.sumFor")?;
        let vals = arg_bat(args, 0, "aggr.sumFor")?;
        let grp = arg_bat(args, 1, "aggr.sumFor")?;
        let n = arg_int(args, 2, "aggr.sumFor")?.max(0) as usize;
        bat(ops::grouped_sum(vals, grp, n)?)
    });

    r.register("aggr", "countFor", |_ctx, args| {
        want(args, 2, "aggr.countFor")?;
        let grp = arg_bat(args, 0, "aggr.countFor")?;
        let n = arg_int(args, 1, "aggr.countFor")?.max(0) as usize;
        bat(ops::grouped_count(grp, n)?)
    });

    r.register("aggr", "avgFor", |_ctx, args| {
        want(args, 3, "aggr.avgFor")?;
        let vals = arg_bat(args, 0, "aggr.avgFor")?;
        let grp = arg_bat(args, 1, "aggr.avgFor")?;
        let n = arg_int(args, 2, "aggr.avgFor")?.max(0) as usize;
        bat(ops::grouped_avg(vals, grp, n)?)
    });

    r.register("aggr", "minFor", |_ctx, args| {
        want(args, 3, "aggr.minFor")?;
        let vals = arg_bat(args, 0, "aggr.minFor")?;
        let grp = arg_bat(args, 1, "aggr.minFor")?;
        let n = arg_int(args, 2, "aggr.minFor")?.max(0) as usize;
        bat(ops::grouped_min(vals, grp, n)?)
    });

    r.register("aggr", "maxFor", |_ctx, args| {
        want(args, 3, "aggr.maxFor")?;
        let vals = arg_bat(args, 0, "aggr.maxFor")?;
        let grp = arg_bat(args, 1, "aggr.maxFor")?;
        let n = arg_int(args, 2, "aggr.maxFor")?.max(0) as usize;
        bat(ops::grouped_max(vals, grp, n)?)
    });
}

// ---- io ---------------------------------------------------------------

fn register_io(r: &mut Registry) {
    r.register("io", "stdout", |_ctx, args| {
        want(args, 0, "io.stdout")?;
        one(MVal::Stream)
    });

    r.register("io", "print", |ctx, args| {
        for a in args {
            match a {
                MVal::Bat(b) => ctx.write_output(&b.render(64)),
                MVal::Pinned { bat, .. } => ctx.write_output(&bat.render(64)),
                other => ctx.write_output(&format!("{other:?}\n")),
            }
        }
        Ok(vec![])
    });
}

// ---- datacyclotron ----------------------------------------------------

fn register_datacyclotron(r: &mut Registry) {
    // datacyclotron.request(schema, table, column, access) → ticket.
    // Non-blocking (§4.1: "Unlike the pin() call, the request() and
    // unpin() calls do not block threads").
    r.register("datacyclotron", "request", |ctx, args| {
        want(args, 4, "datacyclotron.request")?;
        let schema = arg_str(args, 0, "datacyclotron.request")?;
        let table = arg_str(args, 1, "datacyclotron.request")?;
        let column = arg_str(args, 2, "datacyclotron.request")?;
        let ticket = ctx.hooks().request(ctx.query_id, schema, table, column)?;
        one(MVal::Ticket(ticket))
    });

    // datacyclotron.pin(ticket) → BAT; blocks until the fragment is
    // available in local memory.
    r.register("datacyclotron", "pin", |ctx, args| {
        want(args, 1, "datacyclotron.pin")?;
        let MVal::Ticket(t) = args[0] else {
            return Err(MalError::BadCall(format!(
                "datacyclotron.pin: arg must be a request ticket, got {:?}",
                args[0]
            )));
        };
        let b = ctx.hooks().pin(ctx.query_id, t)?;
        one(MVal::Pinned { bat: b, ticket: t })
    });

    // datacyclotron.unpin(pinned-bat | ticket).
    r.register("datacyclotron", "unpin", |ctx, args| {
        want(args, 1, "datacyclotron.unpin")?;
        let ticket = match &args[0] {
            MVal::Pinned { ticket, .. } => *ticket,
            MVal::Ticket(t) => *t,
            other => {
                return Err(MalError::BadCall(format!(
                    "datacyclotron.unpin: arg must be pinned BAT or ticket, got {other:?}"
                )))
            }
        };
        ctx.hooks().unpin(ctx.query_id, ticket)?;
        Ok(vec![])
    });

    // datacyclotron.joinplan(schema, ltab, lcol, rtab, rcol, strategy,
    // est_bytes): planner annotation for one equi-join (shuffle vs.
    // broadcast per the compile-time size estimates). Void-target and in
    // an impure module, so CSE never merges it and DCE never drops it;
    // the seam decides what (if anything) to do with it.
    r.register("datacyclotron", "joinplan", |ctx, args| {
        want(args, 7, "datacyclotron.joinplan")?;
        let name = "datacyclotron.joinplan";
        let schema = arg_str(args, 0, name)?;
        let ltab = arg_str(args, 1, name)?;
        let lcol = arg_str(args, 2, name)?;
        let rtab = arg_str(args, 3, name)?;
        let rcol = arg_str(args, 4, name)?;
        let strategy = arg_str(args, 5, name)?;
        let est = arg_int(args, 6, name)?.max(0) as u64;
        ctx.hooks().join_plan(ctx.query_id, schema, ltab, lcol, rtab, rcol, strategy, est)?;
        Ok(vec![])
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use batstore::{BatStore, Catalog, Column};
    use parking_lot::RwLock;

    fn ctx() -> SessionCtx {
        let mut catalog = Catalog::new();
        let mut store = BatStore::new();
        catalog
            .create_table_columnar(
                &mut store,
                "sys",
                "t",
                vec![("id", Column::from(vec![1, 2, 3]))],
            )
            .unwrap();
        SessionCtx::new(Arc::new(RwLock::new(catalog)), Arc::new(RwLock::new(store)))
    }

    fn call(r: &Registry, name: (&str, &str), ctx: &SessionCtx, args: &[MVal]) -> Vec<MVal> {
        (r.lookup(name.0, name.1).unwrap())(ctx, args).unwrap()
    }

    #[test]
    fn standard_has_everything_the_paper_plans_use() {
        let r = Registry::standard();
        for (m, f) in [
            ("sql", "bind"),
            ("sql", "resultSet"),
            ("sql", "rsCol"),
            ("sql", "exportResult"),
            ("bat", "reverse"),
            ("algebra", "join"),
            ("algebra", "markT"),
            ("io", "stdout"),
            ("datacyclotron", "request"),
            ("datacyclotron", "pin"),
            ("datacyclotron", "unpin"),
        ] {
            assert!(r.lookup(m, f).is_some(), "missing {m}.{f}");
        }
        assert!(r.len() > 25);
    }

    #[test]
    fn bind_resolves_and_typechecks() {
        let r = Registry::standard();
        let c = ctx();
        let out = call(
            &r,
            ("sql", "bind"),
            &c,
            &[MVal::Str("sys".into()), MVal::Str("t".into()), MVal::Str("id".into()), MVal::Int(0)],
        );
        assert_eq!(out[0].as_bat().unwrap().count(), 3);
        let err = (r.lookup("sql", "bind").unwrap())(&c, &[MVal::Int(1)]);
        assert!(err.is_err());
    }

    #[test]
    fn dc_request_pin_unpin_roundtrip_local() {
        let r = Registry::standard();
        let c = ctx();
        let t = call(
            &r,
            ("datacyclotron", "request"),
            &c,
            &[MVal::Str("sys".into()), MVal::Str("t".into()), MVal::Str("id".into()), MVal::Int(0)],
        );
        // LocalHooks are created fresh per hooks() call; pin through a
        // stable hooks instance instead to validate the trait contract.
        let hooks = c.hooks();
        let ticket = hooks.request(0, "sys", "t", "id").unwrap();
        let b = hooks.pin(0, ticket).unwrap();
        assert_eq!(b.count(), 3);
        hooks.unpin(0, ticket).unwrap();
        assert!(matches!(t[0], MVal::Ticket(_)));
    }

    #[test]
    fn select_and_aggregate_chain() {
        let r = Registry::standard();
        let c = ctx();
        let b = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![5, 1, 9, 3]))));
        let sel =
            call(&r, ("algebra", "thetauselect"), &c, &[b, MVal::Int(3), MVal::Str(">=".into())]);
        let s = call(&r, ("aggr", "sum"), &c, &[sel[0].clone()]);
        match &s[0] {
            MVal::Int(v) => assert_eq!(*v, 17),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_new_returns_pair() {
        let r = Registry::standard();
        let c = ctx();
        let b = MVal::Bat(Arc::new(Bat::dense(Column::from(vec!["a", "b", "a"]))));
        let out = call(&r, ("group", "new"), &c, &[b]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].as_bat().unwrap().count(), 2);
    }

    #[test]
    fn result_set_pipeline() {
        let r = Registry::standard();
        let c = ctx();
        let data = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![9]))));
        let rs = call(&r, ("sql", "resultSet"), &c, &[MVal::Int(1), MVal::Int(1), data.clone()]);
        call(
            &r,
            ("sql", "rsCol"),
            &c,
            &[
                rs[0].clone(),
                MVal::Str("sys.c".into()),
                MVal::Str("t_id".into()),
                MVal::Str("int".into()),
                MVal::Int(32),
                MVal::Int(0),
                data,
            ],
        );
        let stream = call(&r, ("io", "stdout"), &c, &[]);
        call(&r, ("sql", "exportResult"), &c, &[stream[0].clone(), rs[0].clone()]);
        let out = c.take_output();
        assert!(out.contains("[ 9 ]"), "{out}");
    }

    #[test]
    fn export_publishes_typed_result() {
        let r = Registry::standard();
        let c = ctx();
        let data = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![4, 5]))));
        let rs = call(&r, ("sql", "resultSet"), &c, &[MVal::Int(1), MVal::Int(1), data.clone()]);
        call(
            &r,
            ("sql", "rsCol"),
            &c,
            &[
                rs[0].clone(),
                MVal::Str("sys.t".into()),
                MVal::Str("id".into()),
                MVal::Str("int".into()),
                MVal::Int(32),
                MVal::Int(0),
                data,
            ],
        );
        let stream = call(&r, ("io", "stdout"), &c, &[]);
        call(&r, ("sql", "exportResult"), &c, &[stream[0].clone(), rs[0].clone()]);
        let typed = c.take_result();
        assert_eq!((typed.column_count(), typed.row_count()), (1, 2));
        assert_eq!(typed.columns[0].name, "id");
        assert_eq!(typed.columns[0].col_type(), batstore::ColType::Int);
        assert_eq!(typed.cell(1, 0), batstore::Val::Int(5));
        assert!(typed.affected.is_none() && typed.info.is_none());
    }

    #[test]
    fn typed_pack_pins_declared_type() {
        let r = Registry::standard();
        let c = ctx();
        // Without a type, a small value narrows to int …
        let out = call(&r, ("bat", "pack"), &c, &[MVal::Int(3)]);
        assert_eq!(out[0].as_bat().unwrap().tail_type(), batstore::ColType::Int);
        // … with the declared type, the column is pinned (COUNT → lng).
        let out = call(&r, ("bat", "pack"), &c, &[MVal::Int(3), MVal::Str("lng".into())]);
        assert_eq!(out[0].as_bat().unwrap().tail_type(), batstore::ColType::Lng);
        let e = (r.lookup("bat", "pack").unwrap())(&c, &[MVal::Int(3), MVal::Str("nope".into())]);
        assert!(e.is_err());
    }

    #[test]
    fn create_append_select_through_local_hooks() {
        let r = Registry::standard();
        let c = ctx();
        call(
            &r,
            ("sql", "createTable"),
            &c,
            &[MVal::Str("sys".into()), MVal::Str("logs".into()), MVal::Str("k:int,msg:str".into())],
        );
        assert!(c.take_output().contains("created"));
        // Build row batches: k = [7, 8], msg = ["a", "b"].
        let k0 = call(&r, ("bat", "new"), &c, &[MVal::Str("int".into())]);
        let k1 = call(&r, ("bat", "append"), &c, &[k0[0].clone(), MVal::Int(7)]);
        let k2 = call(&r, ("bat", "append"), &c, &[k1[0].clone(), MVal::Int(8)]);
        let m0 = call(&r, ("bat", "new"), &c, &[MVal::Str("str".into())]);
        let m1 = call(&r, ("bat", "append"), &c, &[m0[0].clone(), MVal::Str("a".into())]);
        let m2 = call(&r, ("bat", "append"), &c, &[m1[0].clone(), MVal::Str("b".into())]);
        call(
            &r,
            ("sql", "append"),
            &c,
            &[
                MVal::Str("sys".into()),
                MVal::Str("logs".into()),
                MVal::Str("k,msg".into()),
                k2[0].clone(),
                m2[0].clone(),
            ],
        );
        assert!(c.take_output().contains("2 rows affected"));
        // Visible through sql.bind.
        let out = call(
            &r,
            ("sql", "bind"),
            &c,
            &[
                MVal::Str("sys".into()),
                MVal::Str("logs".into()),
                MVal::Str("msg".into()),
                MVal::Int(0),
            ],
        );
        assert_eq!(out[0].as_bat().unwrap().count(), 2);
    }

    #[test]
    fn bat_replace_and_delete_primitives() {
        let r = Registry::standard();
        let c = ctx();
        let base = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![5, 1, 9, 3]))));
        // Select rows >= 3 and rewrite them to 0.
        let sel = call(
            &r,
            ("algebra", "thetauselect"),
            &c,
            &[base.clone(), MVal::Int(3), MVal::Str(">=".into())],
        );
        let out = call(&r, ("bat", "replace"), &c, &[base.clone(), sel[0].clone(), MVal::Int(0)]);
        let b = out[0].as_bat().unwrap();
        let tails: Vec<batstore::Val> = (0..4).map(|i| b.bun(i).1).collect();
        assert_eq!(
            tails,
            vec![
                batstore::Val::Int(0),
                batstore::Val::Int(1),
                batstore::Val::Int(0),
                batstore::Val::Int(0)
            ]
        );
        // Delete the same selection: only the 1 survives, head re-densed.
        let out = call(&r, ("bat", "delete"), &c, &[base, sel[0].clone()]);
        let b = out[0].as_bat().unwrap();
        assert_eq!(b.count(), 1);
        assert_eq!(b.bun(0), (batstore::Val::Oid(0), batstore::Val::Int(1)));
    }

    #[test]
    fn sql_update_and_delete_through_local_hooks() {
        let r = Registry::standard();
        let c = ctx();
        // `t` has id = [1, 2, 3].
        let upd =
            |args: &[MVal]| (r.lookup("sql", "update").unwrap())(&c, args).map(|_| c.take_result());
        let rs = upd(&[
            MVal::Str("sys".into()),
            MVal::Str("t".into()),
            MVal::Str("id".into()),
            MVal::Int(7),
            MVal::Str("cmp".into()),
            MVal::Str("id".into()),
            MVal::Str(">=".into()),
            MVal::Int(2),
        ])
        .unwrap();
        assert_eq!(rs.affected, Some(2));
        let rs = upd(&[
            MVal::Str("sys".into()),
            MVal::Str("t".into()),
            MVal::Str("id".into()),
            MVal::Int(0),
            MVal::Str("in".into()),
            MVal::Str("id".into()),
            MVal::Int(2),
            MVal::Int(1),
            MVal::Int(99),
        ])
        .unwrap();
        assert_eq!(rs.affected, Some(1), "IN (1, 99) hits only the untouched row");
        // DELETE with a between predicate removes both 7s.
        let out = (r.lookup("sql", "delete").unwrap())(
            &c,
            &[
                MVal::Str("sys".into()),
                MVal::Str("t".into()),
                MVal::Str("between".into()),
                MVal::Str("id".into()),
                MVal::Int(6),
                MVal::Int(8),
            ],
        );
        out.unwrap();
        assert_eq!(c.take_result().affected, Some(2));
        assert_eq!(c.catalog.read().table("sys", "t").unwrap().row_count, 1);
        // Malformed predicate encodings are loud.
        let bad = (r.lookup("sql", "delete").unwrap())(
            &c,
            &[MVal::Str("sys".into()), MVal::Str("t".into()), MVal::Str("frob".into())],
        );
        assert!(bad.is_err());
        let bad = (r.lookup("sql", "update").unwrap())(
            &c,
            &[MVal::Str("sys".into()), MVal::Str("t".into()), MVal::Str("".into()), MVal::Int(1)],
        );
        assert!(bad.is_err(), "empty assignment list");
    }

    #[test]
    fn append_arity_and_type_errors() {
        let r = Registry::standard();
        let c = ctx();
        let b = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![1]))));
        // Name count mismatch.
        let e = (r.lookup("sql", "append").unwrap())(
            &c,
            &[MVal::Str("sys".into()), MVal::Str("t".into()), MVal::Str("a,b".into()), b.clone()],
        );
        assert!(e.is_err());
        // bat.new with a bogus type.
        assert!((r.lookup("bat", "new").unwrap())(&c, &[MVal::Str("nope".into())]).is_err());
        // bat.append type mismatch.
        let e = (r.lookup("bat", "append").unwrap())(&c, &[b, MVal::Str("x".into())]);
        assert!(e.is_err());
    }

    #[test]
    fn unknown_function_is_none() {
        let r = Registry::standard();
        assert!(r.lookup("no", "such").is_none());
    }

    #[test]
    fn int_constant_narrowing_matches_int_columns() {
        let r = Registry::standard();
        let c = ctx();
        let b = MVal::Bat(Arc::new(Bat::dense(Column::from(vec![1, 2, 3]))));
        let out = call(&r, ("algebra", "uselect"), &c, &[b, MVal::Int(2)]);
        assert_eq!(out[0].as_bat().unwrap().count(), 1);
    }
}
