//! # mal — the MonetDB Assembly Language layer
//!
//! MonetDB front-ends compile queries into MAL plans: straight-line
//! programs over BATs, interpreted by concurrent threads following
//! dataflow dependencies (paper §3.2). This crate implements:
//!
//! * [`ast`] — programs, instructions, variables and constants,
//! * [`parser`] — a parser for the textual MAL subset the paper prints
//!   (Tables 1 and 2 round-trip),
//! * [`interp`] — a sequential and a dataflow-parallel interpreter with a
//!   per-instruction overhead well under the paper's 1 µs budget,
//! * [`modules`] — the built-in operator modules (`bat`, `algebra`,
//!   `aggr`, `group`, `sql`, `io`) bound to the `batstore` kernel, and the
//!   `datacyclotron` module bound to a [`context::DcHooks`] implementation
//!   provided by the ring engine,
//! * [`optimizer`] — the Data Cyclotron optimizer of §4.1: every
//!   `sql.bind` becomes a `datacyclotron.request`, a blocking
//!   `datacyclotron.pin` is injected before first use, and `unpin` calls
//!   release the fragments (reproducing Table 1 → Table 2 exactly),
//! * [`template`] — the query-template cache of §3.2.

pub mod ast;
pub mod context;
pub mod error;
pub mod interp;
pub mod modules;
pub mod optimizer;
pub mod parser;
pub mod template;
pub mod value;

pub use ast::{Arg, Const, Instr, Program, VarId};
pub use context::{DcHooks, LocalHooks, SessionCtx};
pub use error::{MalError, Result};
pub use interp::{run_dataflow, run_sequential, Interpreter};
pub use optimizer::{
    common_subexpression_eliminate, dc_optimize, dead_code_eliminate, expression_key,
};
pub use parser::parse_program;
pub use template::TemplateCache;
pub use value::{MVal, ResultSet};
