//! The link model: one direction of a duplex link, as configured in the
//! paper's NS-2 setup ("duplex-link with 10 Gb/s bandwidth, 350 us delay,
//! and DropTail as full queue policy", §5).
//!
//! Semantics: messages enqueue at the sender and are serialized FIFO at
//! the link bandwidth. A message that would push the queued byte count
//! over the configured capacity is dropped (DropTail). Delivery happens
//! one propagation delay after serialization completes. The link is a
//! pure state machine — the caller owns the event queue and schedules the
//! delivery it is told about, which keeps this model trivially testable.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Static link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Serialization bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// DropTail queue capacity at the sender, in bytes. Messages that do
    /// not fit are dropped.
    pub queue_capacity_bytes: u64,
}

impl LinkConfig {
    /// The paper's configuration: 10 Gb/s, 350 µs, 200 MB node buffers.
    pub fn paper_default() -> Self {
        LinkConfig {
            bandwidth_bps: 10_000_000_000,
            delay: SimDuration::from_micros(350),
            queue_capacity_bytes: 200 * 1024 * 1024,
        }
    }

    /// Time to serialize `bytes` onto the wire at this bandwidth.
    pub fn tx_time(&self, bytes: u64) -> SimDuration {
        // bytes * 8 / bps seconds, computed in nanoseconds to avoid float
        // accumulation drift across millions of events.
        SimDuration((bytes as u128 * 8 * 1_000_000_000 / self.bandwidth_bps as u128) as u64)
    }
}

/// Result of [`Link::enqueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Accepted: serialization completes at `departs`, the receiver sees
    /// the message at `arrives` (= departs + propagation delay).
    Accepted { departs: SimTime, arrives: SimTime },
    /// DropTail: the queue was full; the message is gone.
    Dropped,
}

/// One direction of a duplex link.
pub struct Link {
    cfg: LinkConfig,
    /// When the transmitter finishes the message currently on the wire.
    busy_until: SimTime,
    /// Messages accepted but not yet fully serialized: (depart_time, bytes).
    in_queue: VecDeque<(SimTime, u64)>,
    queued_bytes: u64,
    // Statistics.
    pub accepted: u64,
    pub dropped: u64,
    pub bytes_sent: u64,
}

impl Link {
    pub fn new(cfg: LinkConfig) -> Self {
        Link {
            cfg,
            busy_until: SimTime::ZERO,
            in_queue: VecDeque::new(),
            queued_bytes: 0,
            accepted: 0,
            dropped: 0,
            bytes_sent: 0,
        }
    }

    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Bytes sitting in (or currently leaving) the sender queue at `now`.
    /// This is the "BAT queue load" the Data Cyclotron's LOIT adaptation
    /// observes.
    pub fn queued_bytes(&mut self, now: SimTime) -> u64 {
        self.expire(now);
        self.queued_bytes
    }

    /// Fraction of the queue capacity occupied at `now`, in `[0, 1+]`.
    pub fn load_fraction(&mut self, now: SimTime) -> f64 {
        self.queued_bytes(now) as f64 / self.cfg.queue_capacity_bytes as f64
    }

    /// Would a message of `bytes` fit right now without being dropped?
    pub fn would_fit(&mut self, now: SimTime, bytes: u64) -> bool {
        self.expire(now);
        self.queued_bytes + bytes <= self.cfg.queue_capacity_bytes
    }

    /// Offer a message of `bytes` to the link at time `now`.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64) -> EnqueueOutcome {
        self.expire(now);
        if self.queued_bytes + bytes > self.cfg.queue_capacity_bytes {
            self.dropped += 1;
            return EnqueueOutcome::Dropped;
        }
        let start = self.busy_until.max(now);
        let departs = start + self.cfg.tx_time(bytes);
        let arrives = departs + self.cfg.delay;
        self.busy_until = departs;
        self.in_queue.push_back((departs, bytes));
        self.queued_bytes += bytes;
        self.accepted += 1;
        self.bytes_sent += bytes;
        EnqueueOutcome::Accepted { departs, arrives }
    }

    /// Release queue space for messages fully serialized by `now`.
    fn expire(&mut self, now: SimTime) {
        while let Some(&(departs, bytes)) = self.in_queue.front() {
            if departs <= now {
                self.in_queue.pop_front();
                self.queued_bytes -= bytes;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(bw_gbps: u64, delay_us: u64, cap_mb: u64) -> Link {
        Link::new(LinkConfig {
            bandwidth_bps: bw_gbps * 1_000_000_000,
            delay: SimDuration::from_micros(delay_us),
            queue_capacity_bytes: cap_mb * 1024 * 1024,
        })
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let cfg = LinkConfig::paper_default();
        // 10 Gb/s = 1.25 GB/s; 1.25 MB should take 1 ms.
        let t = cfg.tx_time(1_250_000);
        assert_eq!(t.as_nanos(), 1_000_000);
    }

    #[test]
    fn single_message_timing() {
        let mut l = mk(10, 350, 200);
        match l.enqueue(SimTime::ZERO, 1_250_000) {
            EnqueueOutcome::Accepted { departs, arrives } => {
                assert_eq!(departs.as_nanos(), 1_000_000);
                assert_eq!(arrives.as_nanos(), 1_000_000 + 350_000);
            }
            EnqueueOutcome::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn fifo_serialization_back_to_back() {
        let mut l = mk(10, 0, 200);
        let a = l.enqueue(SimTime::ZERO, 1_250_000);
        let b = l.enqueue(SimTime::ZERO, 1_250_000);
        let (
            EnqueueOutcome::Accepted { arrives: a1, .. },
            EnqueueOutcome::Accepted { arrives: a2, .. },
        ) = (a, b)
        else {
            panic!("drops")
        };
        assert_eq!(a1.as_nanos(), 1_000_000);
        assert_eq!(a2.as_nanos(), 2_000_000, "second message waits for the first");
    }

    #[test]
    fn drop_tail_when_full() {
        let mut l = mk(10, 350, 1); // 1 MiB capacity
        assert!(matches!(l.enqueue(SimTime::ZERO, 800_000), EnqueueOutcome::Accepted { .. }));
        assert_eq!(l.enqueue(SimTime::ZERO, 800_000), EnqueueOutcome::Dropped);
        assert_eq!(l.dropped, 1);
        assert_eq!(l.accepted, 1);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut l = mk(10, 0, 1);
        assert!(matches!(l.enqueue(SimTime::ZERO, 1_000_000), EnqueueOutcome::Accepted { .. }));
        // 1 MB at 1.25 GB/s = 0.8 ms. At 1 ms the queue must be empty.
        assert_eq!(l.queued_bytes(SimTime::from_millis(1)), 0);
        assert!(matches!(
            l.enqueue(SimTime::from_millis(1), 1_000_000),
            EnqueueOutcome::Accepted { .. }
        ));
    }

    #[test]
    fn idle_gap_restarts_clock() {
        let mut l = mk(10, 100, 200);
        let _ = l.enqueue(SimTime::ZERO, 1_250_000);
        // Enqueue long after the link went idle: serialization starts at now.
        match l.enqueue(SimTime::from_secs(1), 1_250_000) {
            EnqueueOutcome::Accepted { departs, .. } => {
                assert_eq!(departs.as_nanos(), 1_000_000_000 + 1_000_000);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn load_fraction_reflects_queue() {
        let mut l = mk(10, 0, 10);
        let cap = 10 * 1024 * 1024;
        let _ = l.enqueue(SimTime::ZERO, cap / 2);
        let f = l.load_fraction(SimTime::ZERO);
        assert!((f - 0.5).abs() < 1e-9, "load={f}");
        assert!(l.would_fit(SimTime::ZERO, cap / 2));
        assert!(!l.would_fit(SimTime::ZERO, cap / 2 + 1));
    }

    #[test]
    fn stats_accumulate() {
        let mut l = mk(10, 0, 200);
        for _ in 0..5 {
            let _ = l.enqueue(SimTime::ZERO, 1000);
        }
        assert_eq!(l.accepted, 5);
        assert_eq!(l.bytes_sent, 5000);
    }
}
