//! The CPU-cost model behind the paper's Figure 1 ("Only RDMA is able to
//! significantly reduce the local I/O overhead induced at high speed data
//! transfers").
//!
//! The paper's §2 quotes the rule of thumb that ~1 GHz of CPU is needed
//! per 1 Gb/s of legacy-TCP throughput [Foong et al. 2003], decomposed
//! into data copying (the dominant share), network-stack processing,
//! driver work, and context switches. Offloading the stack to the NIC
//! (TOE) removes only the stack share; RDMA additionally removes the
//! copies and context switches via direct data placement and OS bypass.
//!
//! The constants below reproduce the qualitative bar chart of Figure 1
//! and the experimental observation that a 2.33 GHz quad-core could
//! barely saturate a 10 Gb/s link with everything on the CPU.

/// Which parts of network processing run on the host CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NicOffload {
    /// Legacy NIC: everything on the CPU.
    None,
    /// TCP offload engine: network stack runs on the NIC.
    StackOnNic,
    /// Full RDMA: direct data placement + OS bypass.
    Rdma,
}

/// CPU cost per Gb/s of sustained throughput, in GHz, split by component.
/// The components sum to ~1.0 GHz/Gbps for the legacy path, matching the
/// rule of thumb.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpuCostBreakdown {
    pub data_copying_ghz: f64,
    pub network_stack_ghz: f64,
    pub driver_ghz: f64,
    pub context_switches_ghz: f64,
}

/// Per-component cost factors (GHz per Gb/s). Copying dominates, per the
/// memory-traffic analysis in [Balaji 2004] cited by the paper.
const COPY: f64 = 0.55;
const STACK: f64 = 0.25;
const DRIVER: f64 = 0.10;
const CTX: f64 = 0.10;

impl CpuCostBreakdown {
    /// Cost of sustaining `gbps` with the given offload level.
    pub fn for_throughput(offload: NicOffload, gbps: f64) -> Self {
        let mut b = CpuCostBreakdown {
            data_copying_ghz: COPY * gbps,
            network_stack_ghz: STACK * gbps,
            driver_ghz: DRIVER * gbps,
            context_switches_ghz: CTX * gbps,
        };
        match offload {
            NicOffload::None => {}
            NicOffload::StackOnNic => {
                b.network_stack_ghz = 0.0;
            }
            NicOffload::Rdma => {
                // Direct data placement removes the copies; OS bypass
                // removes context switches and most driver work. A small
                // residual remains for posting work requests.
                b.data_copying_ghz = 0.0;
                b.network_stack_ghz = 0.0;
                b.context_switches_ghz = 0.0;
                b.driver_ghz = 0.02 * gbps;
            }
        }
        b
    }

    pub fn total_ghz(&self) -> f64 {
        self.data_copying_ghz + self.network_stack_ghz + self.driver_ghz + self.context_switches_ghz
    }

    /// CPU load as a fraction of `cpu_ghz` available cycles (may exceed
    /// 1.0, meaning the CPU cannot sustain the throughput).
    pub fn load_fraction(&self, cpu_ghz: f64) -> f64 {
        self.total_ghz() / cpu_ghz
    }
}

/// Maximum throughput (Gb/s) a CPU of `cpu_ghz` can sustain at the given
/// offload level, ignoring all other work.
pub fn max_sustainable_gbps(offload: NicOffload, cpu_ghz: f64) -> f64 {
    let per_gbps = CpuCostBreakdown::for_throughput(offload, 1.0).total_ghz();
    if per_gbps <= 0.0 {
        f64::INFINITY
    } else {
        cpu_ghz / per_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_of_thumb_one_ghz_per_gbps() {
        let b = CpuCostBreakdown::for_throughput(NicOffload::None, 1.0);
        assert!((b.total_ghz() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quad_core_2_33_barely_saturates_10g() {
        // Paper §2.2: "even under full CPU load, our 2.33 GHz quad-core
        // system was barely able to saturate the 10 Gb/s link".
        let cpu = 4.0 * 2.33;
        let max = max_sustainable_gbps(NicOffload::None, cpu);
        assert!((9.0..=11.0).contains(&max), "max={max}");
    }

    #[test]
    fn figure1_ordering() {
        let legacy = CpuCostBreakdown::for_throughput(NicOffload::None, 10.0).total_ghz();
        let toe = CpuCostBreakdown::for_throughput(NicOffload::StackOnNic, 10.0).total_ghz();
        let rdma = CpuCostBreakdown::for_throughput(NicOffload::Rdma, 10.0).total_ghz();
        assert!(legacy > toe, "offload must help");
        assert!(toe > rdma, "RDMA must beat TOE");
        // Figure 1: TOE alone is "not sufficient" — copying dominates, so
        // the TOE bar stays above half of the legacy bar.
        assert!(toe > legacy * 0.5);
        // RDMA is negligible (paper: "negligible CPU load").
        assert!(rdma < legacy * 0.1);
    }

    #[test]
    fn copying_dominates_legacy() {
        let b = CpuCostBreakdown::for_throughput(NicOffload::None, 10.0);
        assert!(b.data_copying_ghz > b.network_stack_ghz);
        assert!(b.data_copying_ghz > b.driver_ghz + b.context_switches_ghz);
    }

    #[test]
    fn load_fraction_scales() {
        let b = CpuCostBreakdown::for_throughput(NicOffload::None, 5.0);
        assert!((b.load_fraction(10.0) - 0.5).abs() < 1e-9);
    }
}
