//! Deterministic random number generation for workloads and simulations.
//!
//! Wraps a seeded [`rand::rngs::StdRng`] and adds the distributions the
//! paper's workloads require. The Gaussian sampler is a hand-rolled
//! Box–Muller transform so we do not need the `rand_distr` crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG: the same seed yields the same stream regardless of
/// platform (guaranteed by `StdRng`'s documented stability within a rand
/// major version).
pub struct DetRng {
    inner: StdRng,
    /// Spare value from the last Box–Muller draw (it produces pairs).
    gauss_spare: Option<f64>,
}

impl DetRng {
    pub fn new(seed: u64) -> Self {
        DetRng { inner: StdRng::seed_from_u64(seed), gauss_spare: None }
    }

    /// Uniform in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi > lo);
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        self.inner.random_range(lo..=hi)
    }

    /// Uniform integer in `[0, n)`; handy for index selection.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.random_range(0.0..1.0) < p
    }

    /// Standard normal via Box–Muller (mean 0, stddev 1).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.random_range(0.0..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        mean + stddev * self.std_normal()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.random_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Fork a child RNG with a derived seed; used to give each simulated
    /// node / workload its own independent deterministic stream.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let s: u64 = self.inner.random();
        DetRng::new(s ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.uniform_u64(0, u64::MAX / 2)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.uniform_u64(0, u64::MAX / 2)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let v = r.uniform_f64(1.0, 10.0);
            assert!((1.0..10.0).contains(&v));
            let i = r.uniform_u64(5, 9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = DetRng::new(11);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = r.normal(500.0, 50.0);
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 500.0).abs() < 1.0, "mean={mean}");
        assert!((var.sqrt() - 50.0).abs() < 1.0, "sd={}", var.sqrt());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = DetRng::new(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let a: Vec<u64> = (0..8).map(|_| c1.uniform_u64(0, 1 << 40)).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.uniform_u64(0, 1 << 40)).collect();
        assert_ne!(a, b);
    }
}
