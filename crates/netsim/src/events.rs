//! The future-event list: a binary heap ordered by (time, sequence
//! number). The sequence number makes simultaneous events pop in schedule
//! order, which keeps whole-simulation runs deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error in the caller; we clamp to `now` to keep the clock
    /// monotonic and surface the bug in debug builds.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {:?} < {:?}", at, self.now);
        let at = at.max(self.now);
        self.heap.push(Scheduled { at, seq: self.seq, event });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the simulation clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.schedule(SimTime::from_millis(10), ());
        q.schedule(SimTime::from_millis(25), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
        assert_eq!(last.as_millis(), 25);
    }

    #[test]
    fn schedule_relative_pattern() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        let (t, _) = q.pop().unwrap();
        // A handler typically schedules a follow-up relative to now.
        q.schedule(t + SimDuration::from_millis(5), 2);
        let (t2, e2) = q.pop().unwrap();
        assert_eq!(t2.as_millis(), 15);
        assert_eq!(e2, 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.peek_time().unwrap().as_millis(), 7);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
