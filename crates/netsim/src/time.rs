//! Simulated time with nanosecond resolution.
//!
//! `u64` nanoseconds cover ~584 years of simulated time, far beyond any
//! experiment in the paper (the longest run is a few hundred seconds).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, in nanoseconds since simulation
/// start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any experiment horizon; used as an "infinity"
    /// sentinel for, e.g., idle links.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimTime");
        SimTime((s * 1e9).round() as u64)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Elapsed time since `earlier`; saturates at zero rather than
    /// panicking so that clock-skew at driver boundaries is harmless.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative SimDuration");
        SimDuration((s * 1e9).round() as u64)
    }
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn as_nanos(self) -> u64 {
        self.0
    }
    /// Scale by a non-negative factor (used for timeout slack factors).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_micros(350).as_nanos(), 350_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 1250);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 250);
        // saturating, not panicking
        assert_eq!((SimTime::ZERO - SimTime::from_secs(1)).as_nanos(), 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::from_millis(5).max(SimTime::from_millis(3)).as_millis(), 5);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(SimDuration::from_secs(2).mul_f64(1.5).as_millis(), 3000);
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.0), SimDuration::ZERO);
    }
}
