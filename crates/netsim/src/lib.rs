//! # netsim — deterministic discrete-event network simulation
//!
//! A small, dependency-light substitute for NS-2, sufficient to reproduce
//! the Data Cyclotron evaluation (EDBT 2010, §5). It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a deterministic future-event list (FIFO tie-break),
//! * [`Link`] — a duplex-link half with bandwidth, propagation delay and a
//!   byte-bounded DropTail queue, matching the NS-2 configuration used in
//!   the paper (10 Gb/s, 350 µs, DropTail),
//! * [`DetRng`] — a seeded RNG with the distributions the workloads need
//!   (uniform, Gaussian via Box–Muller),
//! * [`metrics`] — time-series / histogram recorders for the figures,
//! * [`rdma`] — the CPU-cost model behind the paper's Figure 1.
//!
//! Everything is deterministic: the same seed and the same schedule of
//! calls produce bit-identical traces, which the property tests assert.

pub mod events;
pub mod link;
pub mod metrics;
pub mod rdma;
pub mod rng;
pub mod time;

pub use events::EventQueue;
pub use link::{EnqueueOutcome, Link, LinkConfig};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
