//! Measurement recorders used by the experiment harnesses: time series
//! for the figures (ring load over time, cumulative throughput) and
//! fixed-width histograms (query-lifetime distribution, Fig 6b).

use crate::time::SimTime;
use std::fmt::Write as _;

/// An append-only (time, value) series.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t.as_secs_f64(), v));
    }

    pub fn push_secs(&mut self, t: f64, v: f64) {
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at time `t` (last sample at or before `t`), for aligning
    /// series sampled on different grids.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        match self.points.binary_search_by(|&(pt, _)| pt.partial_cmp(&t).unwrap()) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Downsample to at most `n` evenly spaced points (keeps first/last).
    pub fn downsample(&self, n: usize) -> TimeSeries {
        if self.points.len() <= n || n < 2 {
            return self.clone();
        }
        let mut out = Vec::with_capacity(n);
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        for k in 0..n {
            out.push(self.points[(k as f64 * step).round() as usize]);
        }
        TimeSeries { points: out }
    }
}

/// A histogram with fixed-width buckets over `[0, width * nbuckets)`;
/// values beyond the last bucket are clamped into it.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub bucket_width: f64,
    pub counts: Vec<u64>,
    pub total: u64,
    pub sum: f64,
    pub max: f64,
}

impl Histogram {
    pub fn new(bucket_width: f64, nbuckets: usize) -> Self {
        assert!(bucket_width > 0.0 && nbuckets > 0);
        Histogram { bucket_width, counts: vec![0; nbuckets], total: 0, sum: 0.0, max: 0.0 }
    }

    pub fn record(&mut self, v: f64) {
        let idx = ((v / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile from bucket midpoints; `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 0.5) * self.bucket_width;
            }
        }
        (self.counts.len() as f64 - 0.5) * self.bucket_width
    }
}

/// Render series as a CSV with a shared time column; series are aligned by
/// last-value-at-or-before semantics. Used by the harness binaries.
pub fn series_to_csv(headers: &[&str], series: &[&TimeSeries], grid: &[f64]) -> String {
    assert_eq!(headers.len(), series.len());
    let mut out = String::new();
    out.push_str("time");
    for h in headers {
        let _ = write!(out, ",{h}");
    }
    out.push('\n');
    for &t in grid {
        let _ = write!(out, "{t:.3}");
        for s in series {
            match s.value_at(t) {
                Some(v) => {
                    let _ = write!(out, ",{v:.4}");
                }
                None => out.push_str(",0"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeseries_value_at() {
        let mut s = TimeSeries::new();
        s.push_secs(1.0, 10.0);
        s.push_secs(2.0, 20.0);
        s.push_secs(4.0, 40.0);
        assert_eq!(s.value_at(0.5), None);
        assert_eq!(s.value_at(1.0), Some(10.0));
        assert_eq!(s.value_at(3.0), Some(20.0));
        assert_eq!(s.value_at(9.0), Some(40.0));
        assert_eq!(s.last_value(), Some(40.0));
    }

    #[test]
    fn timeseries_downsample_keeps_ends() {
        let mut s = TimeSeries::new();
        for i in 0..1000 {
            s.push_secs(i as f64, i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d.points[0], (0.0, 0.0));
        assert_eq!(d.points[9], (999.0, 999.0));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::new(5.0, 4); // [0,5) [5,10) [10,15) [15,∞)
        for v in [1.0, 2.0, 6.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts, vec![2, 1, 0, 1]);
        assert_eq!(h.total, 4);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 27.25).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        assert!(q50 < q90);
        assert!((q50 - 49.5).abs() < 1.0);
    }

    #[test]
    fn csv_alignment() {
        let mut a = TimeSeries::new();
        a.push_secs(0.0, 1.0);
        a.push_secs(2.0, 3.0);
        let mut b = TimeSeries::new();
        b.push_secs(1.0, 5.0);
        let csv = series_to_csv(&["a", "b"], &[&a, &b], &[0.0, 1.0, 2.0]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert!(lines[1].starts_with("0.000,1.0000,0"));
        assert!(lines[3].starts_with("2.000,3.0000,5.0000"));
    }
}
