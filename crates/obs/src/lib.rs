//! # dc-obs — the observability core
//!
//! Zero-dependency (std only) telemetry primitives shared by every layer
//! of the engine: the event loop, the transports, the persist subsystem,
//! and the SQL servers all record into one per-node [`Registry`], and the
//! `dc.stats` / `dc.latency` / `dc.trace` system views plus the
//! `dc-node metrics` dump read back out of it.
//!
//! Three primitives, all safe to hammer from any thread:
//!
//! * [`Counter`] / [`Gauge`] — single atomics, lock-free on every path.
//! * [`Histogram`] — a fixed array of 64 log₂ buckets (bucket *i* holds
//!   values of bit-width *i*, the top bucket saturates), plus atomic
//!   count/sum/max. Recording is a handful of relaxed atomic adds; the
//!   `p50/p95/p99` readout happens on [`HistogramSnapshot`], so readers
//!   never block writers. Units are whatever the caller records —
//!   engine latencies use microseconds by convention (`*_us` names).
//! * [`TraceBuf`] — a bounded ring buffer of structured [`TraceEvent`]s.
//!   The pair *(boot epoch, statement id)* is the span key: one routed
//!   statement carries it from the origin's `route` through the owner's
//!   `apply`/`ack_sent` back to the origin's `ack`, so the full path of
//!   a statement can be reconstructed by joining `dc.trace` rows across
//!   nodes on that key.
//!
//! The registry hands out `Arc` handles ([`Registry::counter`] and
//! friends are get-or-create), so hot paths resolve a name once and then
//! touch only the atomic.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of log₂ buckets in a [`Histogram`]: one per possible bit-width
/// of a `u64`, with the top bucket absorbing everything ≥ 2⁶².
pub const HIST_BUCKETS: usize = 64;

/// Lock a std mutex, shrugging off poisoning: telemetry must keep
/// working even if some recording thread panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---- counters and gauges -------------------------------------------------

/// A monotonically increasing event count.
#[derive(Default, Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (active sessions, queue depth).
#[derive(Default, Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---- histograms ----------------------------------------------------------

/// Which bucket a value lands in: its bit-width, so bucket 0 holds only
/// zero and bucket `i ≥ 1` holds `[2^(i-1), 2^i)`. The top bucket
/// saturates — nothing is ever dropped for being too large.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Largest value bucket `i` can hold, clipped to `u64::MAX` for the
/// saturating top bucket. Percentile readout reports this upper bound:
/// a conservative estimate that is never below the true percentile and
/// never more than one bucket (2×) above it.
fn bucket_upper(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size log₂-bucket histogram. Recording is wait-free (relaxed
/// atomic adds); readout goes through [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the microseconds elapsed since `start` (the engine's
    /// latency convention).
    pub fn record_elapsed_micros(&self, start: Instant) {
        self.record(start.elapsed().as_micros() as u64);
    }

    /// A point-in-time copy for readout. Buckets are loaded one at a
    /// time, so a snapshot taken mid-record can be off by the in-flight
    /// sample — fine for telemetry, never torn per bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state: mergeable across nodes and
/// the thing percentiles are computed from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot in (ring-wide aggregation). Commutative and
    /// associative: bucket-wise sums plus a max of maxima.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The value at or below which `p` percent of samples fall, read as
    /// the containing bucket's upper bound (clipped to the observed
    /// max). `0` on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

// ---- trace events --------------------------------------------------------

/// One structured event in a node's trace ring buffer. `(epoch, stmt)`
/// is the span key for routed statements; catalog/gossip events carry
/// `(0, 0)`.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Microseconds since this node's registry was created.
    pub ts_micros: u64,
    /// Node that recorded the event.
    pub node: u16,
    /// Origin boot epoch of the statement (see the engine's
    /// `fresh_boot_epoch`), half of the span key.
    pub epoch: u64,
    /// Origin-local statement id, the other half of the span key.
    pub stmt: u64,
    /// What happened: `route`, `retry`, `timeout`, `apply`, `dedup`,
    /// `ack_sent`, `ack`, `gossip`, …
    pub event: &'static str,
    /// Free-form context (table name, row count, error text).
    pub detail: String,
}

/// A bounded ring buffer of [`TraceEvent`]s: pushing past the capacity
/// drops the oldest event, so tracing is always on and never grows.
pub struct TraceBuf {
    cap: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
}

impl TraceBuf {
    pub fn new(cap: usize) -> TraceBuf {
        TraceBuf { cap: cap.max(1), buf: Mutex::new(VecDeque::new()) }
    }

    pub fn push(&self, ev: TraceEvent) {
        let mut buf = lock(&self.buf);
        if buf.len() >= self.cap {
            buf.pop_front();
        }
        buf.push_back(ev);
    }

    /// Oldest-first copy of the buffered events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock(&self.buf).iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        lock(&self.buf).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---- the registry --------------------------------------------------------

/// Default capacity of a node's trace ring buffer: enough for thousands
/// of routed statements at a few events each, bounded at well under a
/// megabyte.
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// One node's metric namespace: named counters, gauges, and histograms
/// (get-or-create, handed out as `Arc`s) plus the trace ring buffer.
pub struct Registry {
    node: u16,
    started: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    trace: TraceBuf,
}

impl Registry {
    pub fn new(node: u16) -> Registry {
        Registry::with_trace_cap(node, DEFAULT_TRACE_CAP)
    }

    pub fn with_trace_cap(node: u16, cap: usize) -> Registry {
        Registry {
            node,
            started: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            trace: TraceBuf::new(cap),
        }
    }

    pub fn node(&self) -> u16 {
        self.node
    }

    /// Microseconds since this registry (its node) started.
    pub fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = lock(&self.counters);
        if let Some(c) = m.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        m.insert(name.to_string(), Arc::clone(&c));
        c
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = lock(&self.gauges);
        if let Some(g) = m.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        m.insert(name.to_string(), Arc::clone(&g));
        g
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = lock(&self.hists);
        if let Some(h) = m.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        m.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Record a trace event under the `(epoch, stmt)` span key.
    pub fn trace(&self, epoch: u64, stmt: u64, event: &'static str, detail: impl Into<String>) {
        self.trace.push(TraceEvent {
            ts_micros: self.now_micros(),
            node: self.node,
            epoch,
            stmt,
            event,
            detail: detail.into(),
        });
    }

    /// Oldest-first copy of the trace ring buffer.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.snapshot()
    }

    /// Every counter as `(name, value)`, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Every gauge as `(name, value)`, name-sorted.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Every histogram as `(name, snapshot)`, name-sorted.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        lock(&self.hists).iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Prometheus-style `name value` lines: counters and gauges verbatim,
    /// histograms expanded to `_count`/`_sum`/`_p50`/`_p95`/`_p99`/`_max`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_p50 {}", h.p50());
            let _ = writeln!(out, "{name}_p95 {}", h.p95());
            let _ = writeln!(out, "{name}_p99 {}", h.p99());
            let _ = writeln!(out, "{name}_max {}", h.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — good enough sample spread for the
    /// percentile reference tests without pulling in a dependency.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_is_monotone() {
        // Sweep every bucket boundary ± 1, in increasing value order:
        // the bucket index must never decrease, and each bucket's upper
        // bound must actually contain the values mapped into it.
        let mut values = vec![0u64];
        for i in 0..64u32 {
            values.push((1u64 << i).saturating_sub(1));
            values.push(1u64 << i);
            values.push((1u64 << i).saturating_add(1));
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let b = bucket_index(v);
            assert!(b >= prev, "bucket_index not monotone at v={v}: {b} < {prev}");
            assert!(v <= bucket_upper(b), "v={v} above its bucket's upper bound");
            prev = b;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 3, "huge values all land in the top bucket");
        assert_eq!(s.count, 3);
        assert_eq!(s.max, u64::MAX);
        // The readout clips to the observed max, not to 2^64.
        assert_eq!(s.percentile(99.0), u64::MAX);
    }

    #[test]
    fn merge_is_commutative() {
        let mut rng = Rng(0xdeca_fbad);
        let (ha, hb) = (Histogram::new(), Histogram::new());
        for _ in 0..500 {
            ha.record(rng.next() >> (rng.next() % 60));
            hb.record(rng.next() >> (rng.next() % 60));
        }
        let (a, b) = (ha.snapshot(), hb.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.count, 1000);
        assert_eq!(ab.sum, a.sum + b.sum);
        assert_eq!(ab.max, a.max.max(b.max));
    }

    /// The log₂-bucket guarantee: the reported percentile is never below
    /// the true percentile and never more than one bucket (2×) above it.
    #[test]
    fn percentiles_bracket_a_reference_computation() {
        for seed in [1u64, 42, 0xfeed_beef, 987_654_321] {
            let mut rng = Rng(seed);
            let h = Histogram::new();
            let mut samples: Vec<u64> = Vec::new();
            for _ in 0..2000 {
                // Mix magnitudes: shifts spread samples across buckets.
                let v = rng.next() >> (rng.next() % 64);
                h.record(v);
                samples.push(v);
            }
            samples.sort_unstable();
            let snap = h.snapshot();
            for p in [50.0, 90.0, 95.0, 99.0] {
                let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
                let reference = samples[rank.clamp(1, samples.len()) - 1];
                let got = snap.percentile(p);
                assert!(
                    got >= reference,
                    "seed {seed} p{p}: reported {got} below true percentile {reference}"
                );
                // Within a regular bucket the readout overshoots by at
                // most one bucket (2×); the saturating top bucket only
                // promises "at most the observed max".
                let bound = if reference >= 1u64 << 62 {
                    snap.max
                } else {
                    reference.saturating_mul(2).saturating_add(1)
                };
                assert!(
                    got <= bound,
                    "seed {seed} p{p}: reported {got} above bound {bound} (ref {reference})"
                );
            }
        }
    }

    #[test]
    fn percentile_readout_on_point_distributions() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50(), 0, "empty histogram reads zero");
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        // One value: every percentile clips to the observed max exactly.
        assert_eq!((s.p50(), s.p95(), s.p99()), (1000, 1000, 1000));
        assert_eq!(s.mean(), 1000);
    }

    #[test]
    fn trace_buf_drops_oldest_beyond_cap() {
        let r = Registry::with_trace_cap(3, 4);
        for i in 0..10u64 {
            r.trace(7, i, "route", format!("ev{i}"));
        }
        let evs = r.trace_events();
        assert_eq!(evs.len(), 4, "bounded at the cap");
        assert_eq!(evs.first().unwrap().stmt, 6, "oldest dropped first");
        assert_eq!(evs.last().unwrap().stmt, 9);
        assert!(evs.iter().all(|e| e.node == 3 && e.epoch == 7));
        assert!(evs.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new(0);
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter("x").get(), 5, "same name, same counter");
        r.gauge("g").inc();
        assert_eq!(r.gauge("g").get(), 1);
        r.histogram("h_us").record(10);
        assert_eq!(r.histogram("h_us").snapshot().count, 1);
        assert_eq!(r.counters(), vec![("x".to_string(), 5)]);
    }

    #[test]
    fn render_text_expands_histograms() {
        let r = Registry::new(1);
        r.counter("frames_out").add(7);
        r.gauge("sessions").set(2);
        let h = r.histogram("stmt_select_us");
        for v in [100, 200, 400] {
            h.record(v);
        }
        let text = r.render_text();
        assert!(text.contains("frames_out 7\n"));
        assert!(text.contains("sessions 2\n"));
        assert!(text.contains("stmt_select_us_count 3\n"));
        assert!(text.contains("stmt_select_us_sum 700\n"));
        assert!(text.contains("stmt_select_us_max 400\n"));
        assert!(text.contains("stmt_select_us_p99 "));
    }
}
