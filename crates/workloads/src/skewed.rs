//! §5.2 — the skewed-workload scenario of Table 3.
//!
//! Four workloads SW1–SW4 with skew values 3/5/7/9: "Each Di is composed
//! by BATs for which the modulo of their id and a skewed value is equal
//! to zero." Start/end times and rates follow Table 3; the disjoint hot
//! sets DHi are the portions of Di not shared with the *other* D sets
//! (DH4 ends up contained in DH1 since multiples of 9 are multiples of
//! 3, exactly as the paper notes).

use crate::dataset::Dataset;
use crate::spec::{ExecModel, QuerySpec};
use datacyclotron::BatId;
use netsim::{DetRng, SimDuration, SimTime};

/// One skewed sub-workload (a row of Table 3).
#[derive(Clone, Debug)]
pub struct SkewedWave {
    pub skew: u32,
    pub start: SimTime,
    pub end: SimTime,
    pub queries_per_second: f64,
}

/// Table 3 of the paper.
pub fn paper_waves() -> Vec<SkewedWave> {
    vec![
        SkewedWave {
            skew: 3,
            start: SimTime::ZERO,
            end: SimTime::from_secs(30),
            queries_per_second: 200.0,
        },
        SkewedWave {
            skew: 5,
            start: SimTime::from_secs(15),
            end: SimTime::from_secs(45),
            queries_per_second: 300.0,
        },
        SkewedWave {
            skew: 7,
            start: SimTime::from_secs_f64(37.5),
            end: SimTime::from_secs_f64(67.5),
            queries_per_second: 400.0,
        },
        SkewedWave {
            skew: 9,
            start: SimTime::from_secs_f64(67.5),
            end: SimTime::from_secs_f64(97.5),
            queries_per_second: 500.0,
        },
    ]
}

/// D_i: the data subset a wave accesses.
pub fn wave_data(dataset_len: usize, skew: u32) -> Vec<BatId> {
    (0..dataset_len as u32).filter(|id| id % skew == 0).map(BatId).collect()
}

/// DH_i: the part of D_i not used by any other wave (for the Fig. 8a
/// per-hot-set accounting). `waves` lists all skews in play.
pub fn disjoint_hot_set(dataset_len: usize, skew: u32, all_skews: &[u32]) -> Vec<BatId> {
    (0..dataset_len as u32)
        .filter(|id| {
            id % skew == 0 && all_skews.iter().all(|&other| other == skew || id % other != 0)
        })
        .map(BatId)
        .collect()
}

/// Tag for a BAT: the lowest-indexed wave whose D_i contains it (used to
/// attribute ring space in Fig. 8a); `None` when no wave uses it.
pub fn bat_wave_tag(bat: BatId, skews: &[u32]) -> Option<u32> {
    skews.iter().position(|&s| bat.0.is_multiple_of(s)).map(|i| i as u32)
}

/// Generate the full §5.2 workload. Queries of each wave are spread
/// round-robin over the nodes; each accesses 1–5 BATs of its D_i
/// (remote only) at 100–200 ms per BAT.
pub fn generate(dataset: &Dataset, nodes: usize, seed: u64) -> Vec<QuerySpec> {
    generate_waves(&paper_waves(), dataset, nodes, seed)
}

pub fn generate_waves(
    waves: &[SkewedWave],
    dataset: &Dataset,
    nodes: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::new();
    for (w_idx, w) in waves.iter().enumerate() {
        let data = wave_data(dataset.len(), w.skew);
        assert!(!data.is_empty(), "wave with empty data set");
        let interval = 1.0 / w.queries_per_second;
        // Round-robin placement, staggered by wave index.
        for (i, slot) in (w_idx..).enumerate() {
            let t = w.start.as_secs_f64() + i as f64 * interval;
            if t >= w.end.as_secs_f64() {
                break;
            }
            let k = rng.uniform_u64(1, 5) as usize;
            let mut needs = Vec::with_capacity(k);
            let mut proc = Vec::with_capacity(k);
            for _ in 0..k {
                // Remote-only: resample while the BAT is local.
                let mut bat = data[rng.index(data.len())];
                let mut guard = 0;
                while dataset.owner_of(bat) == slot % nodes && guard < 32 {
                    bat = data[rng.index(data.len())];
                    guard += 1;
                }
                needs.push(bat);
                proc.push(SimDuration::from_secs_f64(rng.uniform_f64(0.1, 0.2)));
            }
            out.push(QuerySpec {
                arrival: SimTime::from_secs_f64(t),
                node: slot % nodes,
                needs,
                model: ExecModel::PerBat { proc },
                tag: w_idx as u32,
            });
        }
    }
    out.sort_by_key(|q| q.arrival);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_parameters() {
        let w = paper_waves();
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].skew, 3);
        assert_eq!(w[3].queries_per_second, 500.0);
        assert_eq!(w[2].start, SimTime::from_secs_f64(37.5));
    }

    #[test]
    fn wave_data_is_multiples() {
        let d = wave_data(100, 7);
        assert!(d.iter().all(|b| b.0 % 7 == 0));
        assert_eq!(d.len(), 15); // 0,7,…,98
    }

    #[test]
    fn dh4_contained_in_d1() {
        // Multiples of 9 are multiples of 3: DH for skew 9 is empty
        // against {3,5,7,9}; the containment the paper notes.
        let dh9 = disjoint_hot_set(1000, 9, &[3, 5, 7, 9]);
        assert!(dh9.is_empty());
        let d9 = wave_data(1000, 9);
        let d3 = wave_data(1000, 3);
        assert!(d9.iter().all(|b| d3.contains(b)), "D4 ⊂ D1");
    }

    #[test]
    fn dh_sets_disjoint() {
        let skews = [3u32, 5, 7];
        let sets: Vec<Vec<BatId>> =
            skews.iter().map(|&s| disjoint_hot_set(1000, s, &skews)).collect();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                assert!(sets[i].iter().all(|b| !sets[j].contains(b)));
            }
        }
    }

    #[test]
    fn tags_attribute_to_first_wave() {
        assert_eq!(bat_wave_tag(BatId(15), &[3, 5, 7, 9]), Some(0), "15 % 3 == 0 wins");
        assert_eq!(bat_wave_tag(BatId(35), &[3, 5, 7, 9]), Some(1));
        assert_eq!(bat_wave_tag(BatId(49), &[3, 5, 7, 9]), Some(2));
        assert_eq!(bat_wave_tag(BatId(1), &[3, 5, 7, 9]), None);
    }

    #[test]
    fn generated_workload_shape() {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&d, 10, 2);
        // 30s×200 + 30s×300 + 30s×400 + 30s×500 = 42 000 queries.
        assert_eq!(qs.len(), 42_000);
        for q in &qs {
            q.validate().unwrap();
            let wave = &paper_waves()[q.tag as usize];
            assert!(q.arrival >= wave.start && q.arrival < wave.end);
            for b in &q.needs {
                assert_eq!(b.0 % wave.skew, 0, "needs come from the wave's D_i");
            }
        }
    }

    #[test]
    fn waves_overlap_as_specified() {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&d, 10, 2);
        // At t=20s both SW1 and SW2 are active.
        let active: Vec<u32> = qs
            .iter()
            .filter(|q| q.arrival >= SimTime::from_secs(19) && q.arrival <= SimTime::from_secs(21))
            .map(|q| q.tag)
            .collect();
        assert!(active.contains(&0) && active.contains(&1));
        // SW3/SW4 do not overlap.
        assert!(!qs.iter().any(|q| q.tag == 3 && q.arrival < SimTime::from_secs_f64(67.5)));
    }
}
