//! §5.3 — non-uniform (Gaussian) data access.
//!
//! "The Gaussian distribution is centered around BAT id 500 with a
//! standard deviation of 50. All the nodes use the same distribution."
//! The rest of the scenario matches §5.1.

use crate::dataset::Dataset;
use crate::micro::MicroParams;
use crate::spec::{ExecModel, QuerySpec};
use datacyclotron::BatId;
use netsim::{DetRng, SimDuration, SimTime};

#[derive(Clone, Debug)]
pub struct GaussianParams {
    pub base: MicroParams,
    pub mean: f64,
    pub stddev: f64,
}

impl Default for GaussianParams {
    fn default() -> Self {
        GaussianParams { base: MicroParams::default(), mean: 500.0, stddev: 50.0 }
    }
}

/// Draw a BAT id from the clipped Gaussian.
fn draw_bat(rng: &mut DetRng, p: &GaussianParams, n_bats: usize) -> BatId {
    loop {
        let v = rng.normal(p.mean, p.stddev).round();
        if v >= 0.0 && (v as usize) < n_bats {
            return BatId(v as u32);
        }
    }
}

pub fn generate(
    params: &GaussianParams,
    dataset: &Dataset,
    nodes: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::new();
    let interval = 1.0 / params.base.queries_per_second_per_node;
    for node in 0..nodes {
        for i in 0.. {
            let t = i as f64 * interval;
            if t >= params.base.duration.as_secs_f64() {
                break;
            }
            let k =
                rng.uniform_u64(params.base.min_bats as u64, params.base.max_bats as u64) as usize;
            let mut needs = Vec::with_capacity(k);
            let mut proc = Vec::with_capacity(k);
            for _ in 0..k {
                // Remote-only like the rest of §5: resample locals.
                let mut bat = draw_bat(&mut rng, params, dataset.len());
                let mut guard = 0;
                while dataset.owner_of(bat) == node && guard < 64 {
                    bat = draw_bat(&mut rng, params, dataset.len());
                    guard += 1;
                }
                needs.push(bat);
                proc.push(SimDuration::from_secs_f64(rng.uniform_f64(
                    params.base.min_proc.as_secs_f64(),
                    params.base.max_proc.as_secs_f64(),
                )));
            }
            out.push(QuerySpec {
                arrival: SimTime::from_secs_f64(t),
                node,
                needs,
                model: ExecModel::PerBat { proc },
                tag: 0,
            });
        }
    }
    out.sort_by_key(|q| q.arrival);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_distribution_centered_at_500() {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&GaussianParams::default(), &d, 10, 3);
        let mut sum = 0.0;
        let mut count = 0.0;
        let mut in_vogue = 0u64;
        let mut total = 0u64;
        for q in &qs {
            for b in &q.needs {
                sum += b.0 as f64;
                count += 1.0;
                total += 1;
                if (350..=600).contains(&b.0) {
                    in_vogue += 1;
                }
            }
        }
        let mean = sum / count;
        assert!((mean - 500.0).abs() < 5.0, "mean={mean}");
        // Nearly all accesses hit the paper's "in vogue" range.
        assert!(in_vogue as f64 / total as f64 > 0.95);
    }

    #[test]
    fn unpopular_bats_rarely_touched() {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&GaussianParams::default(), &d, 10, 3);
        let far = qs.iter().flat_map(|q| &q.needs).filter(|b| b.0 < 200 || b.0 > 800).count();
        let total: usize = qs.iter().map(|q| q.needs.len()).sum();
        assert!((far as f64) / (total as f64) < 0.001, "far fraction too high");
    }

    #[test]
    fn same_scale_as_micro() {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&GaussianParams::default(), &d, 10, 3);
        assert_eq!(qs.len(), 48_000);
        for q in qs.iter().take(200) {
            q.validate().unwrap();
        }
    }
}
