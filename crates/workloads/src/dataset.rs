//! Dataset descriptions: BAT sizes and their owner placement.

use datacyclotron::BatId;
use netsim::DetRng;

/// The data population of a simulated ring.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Size in bytes of `BatId(i)`.
    pub sizes: Vec<u64>,
    /// Owner node index of `BatId(i)`.
    pub owners: Vec<usize>,
}

impl Dataset {
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    pub fn total_bytes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    pub fn size_of(&self, bat: BatId) -> u64 {
        self.sizes[bat.0 as usize]
    }

    pub fn owner_of(&self, bat: BatId) -> usize {
        self.owners[bat.0 as usize]
    }

    /// The paper's §5 base dataset: "a raw data-set of 8 GB composed of
    /// 1000 BATs with sizes varying from 1 MB to 10 MB … uniformly
    /// distributed over all nodes, giving ownership over about 0.8 GB of
    /// data per node."
    ///
    /// A uniform [1, 10] MB draw averages 5.5 MB — 1000 of those cannot
    /// also sum to 8 GB, so the paper's numbers are mutually inexact. We
    /// keep the properties that drive ring behavior: the 8 GB total
    /// (4× oversubscription of the 2 GB ring) and the 10:1 size spread;
    /// after rescaling, absolute sizes land in ≈[1.5, 14.5] MB.
    pub fn paper_8gb(nodes: usize, seed: u64) -> Dataset {
        Self::uniform(1000, 8 * 1024 * 1024 * 1024, 1 << 20, 10 << 20, nodes, seed)
    }

    /// Uniform sizes in `[lo, hi]` scaled to `total_bytes`, owners
    /// uniform over `nodes`.
    pub fn uniform(
        n_bats: usize,
        total_bytes: u64,
        lo: u64,
        hi: u64,
        nodes: usize,
        seed: u64,
    ) -> Dataset {
        assert!(n_bats > 0 && nodes > 0 && hi >= lo && lo > 0);
        let mut rng = DetRng::new(seed);
        let raw: Vec<f64> =
            (0..n_bats).map(|_| rng.uniform_f64(lo as f64, hi as f64 + 1.0)).collect();
        let raw_total: f64 = raw.iter().sum();
        let scale = total_bytes as f64 / raw_total;
        let sizes: Vec<u64> = raw.iter().map(|&s| (s * scale).round().max(1.0) as u64).collect();
        let owners: Vec<usize> = (0..n_bats).map(|_| rng.index(nodes)).collect();
        Dataset { sizes, owners }
    }

    /// Redistribute ownership over a different node count (pulsating
    /// rings: same data, resized ring).
    pub fn redistribute(&self, nodes: usize, seed: u64) -> Dataset {
        let mut rng = DetRng::new(seed);
        Dataset {
            sizes: self.sizes.clone(),
            owners: (0..self.len()).map(|_| rng.index(nodes)).collect(),
        }
    }

    /// BATs not owned by `node` (the paper's workloads access remote
    /// BATs only).
    pub fn remote_bats(&self, node: usize) -> Vec<BatId> {
        (0..self.len() as u32).filter(|&i| self.owners[i as usize] != node).map(BatId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_shape() {
        let d = Dataset::paper_8gb(10, 42);
        assert_eq!(d.len(), 1000);
        let total = d.total_bytes();
        let want = 8u64 * 1024 * 1024 * 1024;
        let err = (total as i64 - want as i64).abs() as f64 / want as f64;
        assert!(err < 0.001, "total {total} vs {want}");
        // Sizes keep the 10:1 spread after scaling (≈[1.5, 14.5] MB).
        let (min, max) = (d.sizes.iter().min().unwrap(), d.sizes.iter().max().unwrap());
        assert!(*min > 1_000_000, "min size {min}");
        assert!(*max < 16_500_000, "max size {max}");
        assert!(*max / *min < 11, "spread {} / {}", max, min);
        // Ownership spread: every node owns something in the ballpark of
        // 0.8 GB.
        let mut per_node = [0u64; 10];
        for i in 0..d.len() {
            per_node[d.owners[i]] += d.sizes[i];
        }
        for (n, &bytes) in per_node.iter().enumerate() {
            assert!((500_000_000..1_200_000_000).contains(&bytes), "node {n} owns {bytes}");
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Dataset::paper_8gb(10, 7);
        let b = Dataset::paper_8gb(10, 7);
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.owners, b.owners);
        let c = Dataset::paper_8gb(10, 8);
        assert_ne!(a.owners, c.owners);
    }

    #[test]
    fn remote_bats_exclude_owned() {
        let d = Dataset::uniform(100, 1 << 20, 1 << 10, 1 << 12, 4, 1);
        let remote = d.remote_bats(2);
        assert!(!remote.is_empty());
        for b in remote {
            assert_ne!(d.owner_of(b), 2);
        }
    }

    #[test]
    fn redistribute_keeps_sizes() {
        let d = Dataset::paper_8gb(10, 3);
        let r = d.redistribute(20, 3);
        assert_eq!(d.sizes, r.sizes);
        assert!(r.owners.iter().any(|&o| o >= 10), "uses the new nodes");
    }
}
