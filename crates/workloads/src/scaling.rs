//! §6.3 — pulsating rings (Figs 10 and 11).
//!
//! "A peek-preview experiment, with the scenario defined in section 5.3
//! … The workload in the system, i.e., the total number of queries, is
//! kept stable while the number of nodes is increased from 5 up to 20."

use crate::dataset::Dataset;
use crate::gaussian::{self, GaussianParams};
use crate::micro::MicroParams;
use crate::spec::QuerySpec;
use netsim::SimDuration;

/// One ring size of the sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    pub nodes: usize,
    pub dataset: Dataset,
    pub queries: Vec<QuerySpec>,
}

/// Build the sweep: the *total* query volume (and the data) is constant;
/// the per-node rate scales inversely with the ring size.
pub fn sweep(
    node_counts: &[usize],
    total_qps: f64,
    duration: SimDuration,
    seed: u64,
) -> Vec<ScalePoint> {
    let base = Dataset::paper_8gb(node_counts[0], seed);
    node_counts
        .iter()
        .map(|&n| {
            let dataset = base.redistribute(n, seed ^ (n as u64));
            let params = GaussianParams {
                base: MicroParams {
                    queries_per_second_per_node: total_qps / n as f64,
                    duration,
                    ..MicroParams::default()
                },
                ..GaussianParams::default()
            };
            let queries = gaussian::generate(&params, &dataset, n, seed.wrapping_add(n as u64));
            ScalePoint { nodes: n, dataset, queries }
        })
        .collect()
}

/// The paper's sweep: 5, 10, 15, 20 nodes.
pub fn paper_sweep(seed: u64) -> Vec<ScalePoint> {
    sweep(&[5, 10, 15, 20], 400.0, SimDuration::from_secs(60), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_volume_constant() {
        let pts = sweep(&[5, 10], 100.0, SimDuration::from_secs(10), 1);
        let totals: Vec<usize> = pts.iter().map(|p| p.queries.len()).collect();
        assert_eq!(totals[0], totals[1], "total workload kept stable");
        assert_eq!(totals[0], 1000);
    }

    #[test]
    fn nodes_vary_data_constant() {
        let pts = sweep(&[5, 20], 100.0, SimDuration::from_secs(5), 1);
        assert_eq!(pts[0].dataset.sizes, pts[1].dataset.sizes);
        assert!(pts[1].dataset.owners.iter().any(|&o| o >= 5));
        assert!(pts[1].queries.iter().any(|q| q.node >= 5));
    }

    #[test]
    fn per_node_rate_scales_down() {
        let pts = sweep(&[5, 10], 100.0, SimDuration::from_secs(10), 1);
        let node0_count = |p: &ScalePoint| p.queries.iter().filter(|q| q.node == 0).count();
        assert!(node0_count(&pts[0]) > node0_count(&pts[1]));
    }
}
