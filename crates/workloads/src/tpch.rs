//! §5.4 — the TPC-H SF-5 calibration workload.
//!
//! The paper calibrates its simulator with MonetDB execution traces of
//! the 22 TPC-H queries at scale factor 5: per-operator times and the
//! column/index BATs each query touches. Those traces are not available,
//! so this module synthesizes the closest equivalent (see DESIGN.md §4):
//!
//! * the real TPC-H schema at SF-5 row counts, with realistic per-column
//!   byte widths plus the foreign-key join indices the paper mentions,
//! * the real column footprint of each of the 22 query classes,
//! * per-class work (CPU core-seconds) normalized so the single-node run
//!   reproduces the paper's ≈315 s for 1200 queries on 4 cores,
//! * columns partitioned into fragments small enough to circulate
//!   ("we assume each partition to be an individual BAT easily fitting
//!   in main memory"),
//! * the paper's calibration rule: pins are scheduled `OpT` after the
//!   previous reception; a query finishes `T` after its last pin
//!   ([`crate::spec::ExecModel::PinSchedule`]).
//!
//! The query mix follows the paper: "The scheduling of the queries
//! follows a Gaussian distribution with mean 10 and standard deviation
//! 2. On this distribution the fastest queries are the ones with higher
//! probability to be scheduled."

use crate::dataset::Dataset;
use crate::spec::{ExecModel, QuerySpec};
use datacyclotron::BatId;
use netsim::{DetRng, SimDuration, SimTime};
use std::collections::HashMap;

/// Maximum fragment size: well under the 200 MB node buffers.
pub const MAX_FRAGMENT_BYTES: u64 = 48 * 1024 * 1024;

/// SF-5 row counts.
const ROWS_L: u64 = 30_000_000;
const ROWS_O: u64 = 7_500_000;
const ROWS_C: u64 = 750_000;
const ROWS_P: u64 = 1_000_000;
const ROWS_PS: u64 = 4_000_000;
const ROWS_S: u64 = 50_000;
const ROWS_N: u64 = 25;
const ROWS_R: u64 = 5;

/// (table, column, bytes-per-row, rows). Join indices (`idx_*`) model
/// "the indexes created for the TPC-H tables to speed up foreign key
/// processing".
fn schema() -> Vec<(&'static str, &'static str, u64, u64)> {
    vec![
        // lineitem
        ("lineitem", "l_orderkey", 4, ROWS_L),
        ("lineitem", "l_partkey", 4, ROWS_L),
        ("lineitem", "l_suppkey", 4, ROWS_L),
        ("lineitem", "l_quantity", 8, ROWS_L),
        ("lineitem", "l_extendedprice", 8, ROWS_L),
        ("lineitem", "l_discount", 8, ROWS_L),
        ("lineitem", "l_tax", 8, ROWS_L),
        ("lineitem", "l_returnflag", 1, ROWS_L),
        ("lineitem", "l_linestatus", 1, ROWS_L),
        ("lineitem", "l_shipdate", 4, ROWS_L),
        ("lineitem", "l_commitdate", 4, ROWS_L),
        ("lineitem", "l_receiptdate", 4, ROWS_L),
        ("lineitem", "l_shipinstruct", 20, ROWS_L),
        ("lineitem", "l_shipmode", 10, ROWS_L),
        // orders
        ("orders", "o_orderkey", 4, ROWS_O),
        ("orders", "o_custkey", 4, ROWS_O),
        ("orders", "o_orderstatus", 1, ROWS_O),
        ("orders", "o_totalprice", 8, ROWS_O),
        ("orders", "o_orderdate", 4, ROWS_O),
        ("orders", "o_orderpriority", 15, ROWS_O),
        ("orders", "o_shippriority", 4, ROWS_O),
        ("orders", "o_comment", 50, ROWS_O),
        // customer
        ("customer", "c_custkey", 4, ROWS_C),
        ("customer", "c_name", 20, ROWS_C),
        ("customer", "c_address", 30, ROWS_C),
        ("customer", "c_nationkey", 4, ROWS_C),
        ("customer", "c_phone", 15, ROWS_C),
        ("customer", "c_acctbal", 8, ROWS_C),
        ("customer", "c_mktsegment", 10, ROWS_C),
        ("customer", "c_comment", 80, ROWS_C),
        // part
        ("part", "p_partkey", 4, ROWS_P),
        ("part", "p_name", 35, ROWS_P),
        ("part", "p_mfgr", 25, ROWS_P),
        ("part", "p_brand", 10, ROWS_P),
        ("part", "p_type", 25, ROWS_P),
        ("part", "p_size", 4, ROWS_P),
        ("part", "p_container", 10, ROWS_P),
        // partsupp
        ("partsupp", "ps_partkey", 4, ROWS_PS),
        ("partsupp", "ps_suppkey", 4, ROWS_PS),
        ("partsupp", "ps_availqty", 4, ROWS_PS),
        ("partsupp", "ps_supplycost", 8, ROWS_PS),
        // supplier
        ("supplier", "s_suppkey", 4, ROWS_S),
        ("supplier", "s_name", 20, ROWS_S),
        ("supplier", "s_address", 30, ROWS_S),
        ("supplier", "s_nationkey", 4, ROWS_S),
        ("supplier", "s_phone", 15, ROWS_S),
        ("supplier", "s_acctbal", 8, ROWS_S),
        // nation / region
        ("nation", "n_nationkey", 4, ROWS_N),
        ("nation", "n_name", 20, ROWS_N),
        ("nation", "n_regionkey", 4, ROWS_N),
        ("region", "r_regionkey", 4, ROWS_R),
        ("region", "r_name", 20, ROWS_R),
        // FK join indices.
        ("idx", "l_to_o", 8, ROWS_L),
        ("idx", "l_to_p", 8, ROWS_L),
        ("idx", "l_to_s", 8, ROWS_L),
        ("idx", "o_to_c", 8, ROWS_O),
        ("idx", "ps_to_p", 8, ROWS_PS),
        ("idx", "ps_to_s", 8, ROWS_PS),
    ]
}

/// Column footprint per query class (1-based): the columns (and join
/// indices) each TPC-H query touches, per the specification.
fn footprints() -> Vec<Vec<(&'static str, &'static str)>> {
    vec![
        // Q1
        vec![
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_tax"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_linestatus"),
            ("lineitem", "l_shipdate"),
        ],
        // Q2
        vec![
            ("part", "p_partkey"),
            ("part", "p_mfgr"),
            ("part", "p_size"),
            ("part", "p_type"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_nationkey"),
            ("supplier", "s_phone"),
            ("supplier", "s_acctbal"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "ps_to_p"),
            ("idx", "ps_to_s"),
        ],
        // Q3
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_mktsegment"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_shippriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q4
        vec![
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_orderpriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("idx", "l_to_o"),
        ],
        // Q5
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q6
        vec![
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
        ],
        // Q7
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_s"),
            ("idx", "o_to_c"),
        ],
        // Q8
        vec![
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("nation", "n_name"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "l_to_p"),
        ],
        // Q9
        vec![
            ("part", "p_partkey"),
            ("part", "p_name"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_quantity"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_p"),
            ("idx", "l_to_s"),
        ],
        // Q10
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_name"),
            ("customer", "c_acctbal"),
            ("customer", "c_address"),
            ("customer", "c_phone"),
            ("customer", "c_comment"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q11
        vec![
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_availqty"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "ps_to_s"),
        ],
        // Q12
        vec![
            ("orders", "o_orderkey"),
            ("orders", "o_orderpriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("lineitem", "l_shipdate"),
            ("idx", "l_to_o"),
        ],
        // Q13
        vec![
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_comment"),
            ("idx", "o_to_c"),
        ],
        // Q14
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("idx", "l_to_p"),
        ],
        // Q15
        vec![
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_phone"),
            ("idx", "l_to_s"),
        ],
        // Q16
        vec![
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_type"),
            ("part", "p_size"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("idx", "ps_to_p"),
        ],
        // Q17
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
            ("idx", "l_to_p"),
        ],
        // Q18
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_name"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_totalprice"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_quantity"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q19
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_shipinstruct"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
            ("part", "p_size"),
            ("idx", "l_to_p"),
        ],
        // Q20
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_availqty"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_shipdate"),
            ("part", "p_partkey"),
            ("part", "p_name"),
        ],
        // Q21
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_receiptdate"),
            ("lineitem", "l_commitdate"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderstatus"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_s"),
            ("idx", "l_to_o"),
        ],
        // Q22
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_phone"),
            ("customer", "c_acctbal"),
            ("orders", "o_custkey"),
        ],
    ]
}

/// Relative CPU work per class (scan-heavy and many-join queries cost
/// more; normalized against the paper's single-node total).
const REL_WORK: [f64; 22] = [
    10.0, // Q1
    1.5,  // Q2
    2.5,  // Q3
    1.8,  // Q4
    3.0,  // Q5
    1.2,  // Q6
    2.8,  // Q7
    3.2,  // Q8
    6.0,  // Q9
    2.6,  // Q10
    0.8,  // Q11
    1.6,  // Q12
    2.2,  // Q13
    1.0,  // Q14
    1.2,  // Q15
    1.0,  // Q16
    1.4,  // Q17
    4.5,  // Q18
    1.3,  // Q19
    1.8,  // Q20
    5.0,  // Q21
    0.7,  // Q22
];

/// The paper's single-node anchor: 1200 queries on 4 cores in ≈317 s at
/// ≈99.7% utilization ⇒ mean work ≈ 1.05 core-seconds per query.
pub const TARGET_MEAN_CORE_SECONDS: f64 = 1.05;

/// A fully materialized TPC-H ring workload.
pub struct TpchWorkload {
    pub dataset: Dataset,
    pub queries: Vec<QuerySpec>,
    /// Fragment name per BatId index (`table.column#k`).
    pub fragment_names: Vec<String>,
    /// Fragments per query class (1-based indexing: `class_frags[0]` is Q1).
    pub class_frags: Vec<Vec<BatId>>,
    /// Normalized core-seconds per class.
    pub class_work: Vec<f64>,
}

#[derive(Clone, Debug)]
pub struct TpchParams {
    pub queries_per_node: usize,
    pub registration_rate: f64,
    pub class_mean: f64,
    pub class_stddev: f64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            queries_per_node: 1200,
            registration_rate: 8.0,
            class_mean: 10.0,
            class_stddev: 2.0,
        }
    }
}

/// Probability mass of each class under the clipped Gaussian mix.
fn class_probabilities(mean: f64, sd: f64) -> [f64; 22] {
    // Discrete approximation: mass of round(N(mean, sd²)) clipped to 1..22.
    let mut p = [0.0f64; 22];
    let norm = |x: f64| (-(x * x) / 2.0).exp();
    for (i, slot) in p.iter_mut().enumerate() {
        let c = (i + 1) as f64;
        *slot = norm((c - mean) / sd);
    }
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

/// Build the workload for a ring of `nodes`.
pub fn generate(params: &TpchParams, nodes: usize, seed: u64) -> TpchWorkload {
    let mut rng = DetRng::new(seed);

    // 1. Fragment the schema.
    let mut sizes: Vec<u64> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut frags_of: HashMap<(&'static str, &'static str), Vec<BatId>> = HashMap::new();
    for (table, column, width, rows) in schema() {
        let bytes = width * rows;
        let nfrags = bytes.div_ceil(MAX_FRAGMENT_BYTES).max(1);
        let per_frag = bytes / nfrags;
        let mut ids = Vec::with_capacity(nfrags as usize);
        for k in 0..nfrags {
            let id = BatId(sizes.len() as u32);
            sizes.push(per_frag.max(1));
            owners.push(rng.index(nodes));
            names.push(format!("{table}.{column}#{k}"));
            ids.push(id);
        }
        frags_of.insert((table, column), ids);
    }
    let dataset = Dataset { sizes, owners };

    // 2. Class footprints in fragments.
    let class_frags: Vec<Vec<BatId>> = footprints()
        .iter()
        .map(|cols| {
            cols.iter()
                .flat_map(|&(t, c)| {
                    frags_of
                        .get(&(t, c))
                        .unwrap_or_else(|| panic!("footprint references unknown column {t}.{c}"))
                        .clone()
                })
                .collect()
        })
        .collect();

    // 3. Normalize work so the mix averages TARGET_MEAN_CORE_SECONDS.
    let probs = class_probabilities(params.class_mean, params.class_stddev);
    let expected_rel: f64 = probs.iter().zip(REL_WORK.iter()).map(|(p, w)| p * w).sum();
    let scale = TARGET_MEAN_CORE_SECONDS / expected_rel;
    let class_work: Vec<f64> = REL_WORK.iter().map(|w| w * scale).collect();

    // 4. Emit the per-node query streams.
    let interval = 1.0 / params.registration_rate;
    let mut queries = Vec::with_capacity(nodes * params.queries_per_node);
    for node in 0..nodes {
        for i in 0..params.queries_per_node {
            let class = loop {
                let c = rng.normal(params.class_mean, params.class_stddev).round();
                if (1.0..=22.0).contains(&c) {
                    break c as usize;
                }
            };
            let needs = class_frags[class - 1].clone();
            let work = class_work[class - 1];
            queries.push(QuerySpec {
                arrival: SimTime::from_secs_f64(i as f64 * interval),
                node,
                needs: needs.clone(),
                model: ExecModel::PinSchedule { segments: split_segments(work, needs.len()) },
                tag: class as u32,
            });
        }
    }
    queries.sort_by_key(|q| (q.arrival, q.node));

    TpchWorkload { dataset, queries, fragment_names: names, class_frags, class_work }
}

/// Split total work into `k + 1` operator segments: a short prefix before
/// the first pin, even mid-plan segments, and a heavier final segment
/// (result construction happens after the last reception — see the
/// paper's calibration description).
fn split_segments(total_core_seconds: f64, k: usize) -> Vec<SimDuration> {
    debug_assert!(k >= 1);
    let first = 0.10;
    let last = 0.20;
    let middle = (1.0 - first - last) / k as f64;
    let mut out = Vec::with_capacity(k + 1);
    out.push(SimDuration::from_secs_f64(total_core_seconds * first));
    for _ in 1..k {
        out.push(SimDuration::from_secs_f64(total_core_seconds * middle));
    }
    out.push(SimDuration::from_secs_f64(total_core_seconds * (middle + last)));
    out
}

/// Model for the paper's "MonetDB" row of Table 4: the real DBMS reaches
/// only ~70% CPU utilization due to thread management and client context
/// switches, so the same work takes proportionally longer than the
/// perfectly parallelized single-node simulation.
pub fn monetdb_baseline_secs(total_core_seconds: f64, cores: usize, efficiency: f64) -> f64 {
    total_core_seconds / (cores as f64 * efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_fragments_bounded() {
        let w = generate(&TpchParams::default(), 4, 1);
        for &s in &w.dataset.sizes {
            assert!(s <= MAX_FRAGMENT_BYTES, "fragment too large: {s}");
        }
        // SF-5 raw volume: several GB.
        let total = w.dataset.total_bytes();
        assert!(total > 3_000_000_000 && total < 10_000_000_000, "total {total}");
    }

    #[test]
    fn footprints_cover_all_22_queries() {
        assert_eq!(footprints().len(), 22);
        let w = generate(&TpchParams::default(), 4, 1);
        assert_eq!(w.class_frags.len(), 22);
        for (i, frags) in w.class_frags.iter().enumerate() {
            assert!(!frags.is_empty(), "Q{} has no fragments", i + 1);
        }
        // Q1 is lineitem-only and scan-heavy: many fragments.
        assert!(w.class_frags[0].len() >= 7);
        // Q22 is small.
        assert!(w.class_frags[21].len() < w.class_frags[0].len());
    }

    #[test]
    fn work_mix_hits_the_paper_anchor() {
        let w = generate(&TpchParams::default(), 1, 1);
        let total: f64 = w.queries.iter().map(|q| q.net_work().as_secs_f64()).sum();
        // 1200 queries ≈ 1260 core-seconds → 315 s on 4 perfect cores.
        let per_query = total / w.queries.len() as f64;
        assert!((per_query - TARGET_MEAN_CORE_SECONDS).abs() < 0.15, "mean work {per_query}");
    }

    #[test]
    fn queries_valid_and_classes_near_10() {
        let w = generate(&TpchParams::default(), 2, 3);
        assert_eq!(w.queries.len(), 2400);
        let mut class_sum = 0.0;
        for q in &w.queries {
            q.validate().unwrap();
            assert!((1..=22).contains(&(q.tag as usize)));
            class_sum += q.tag as f64;
        }
        let mean = class_sum / w.queries.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "class mean {mean}");
    }

    #[test]
    fn registration_takes_150_seconds() {
        let p = TpchParams::default();
        let w = generate(&p, 1, 1);
        let last = w.queries.iter().map(|q| q.arrival).max().unwrap();
        assert!((last.as_secs_f64() - 149.875).abs() < 0.2, "{last:?}");
    }

    #[test]
    fn segments_sum_to_work() {
        let segs = split_segments(2.0, 5);
        assert_eq!(segs.len(), 6);
        let total: f64 = segs.iter().map(|s| s.as_secs_f64()).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monetdb_row_slower_than_ideal() {
        // 1260 core-s on 4 cores: ideal 315 s; at 70% efficiency ≈ 450 s,
        // within the ballpark of the paper's 420 s.
        let ideal = monetdb_baseline_secs(1260.0, 4, 1.0);
        let monet = monetdb_baseline_secs(1260.0, 4, 0.75);
        assert!((ideal - 315.0).abs() < 1.0);
        assert!(monet > 400.0 && monet < 440.0, "{monet}");
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&TpchParams::default(), 3, 9);
        let b = generate(&TpchParams::default(), 3, 9);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.dataset.owners, b.dataset.owners);
    }
}
