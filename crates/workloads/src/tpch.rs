//! §5.4 — the TPC-H SF-5 calibration workload.
//!
//! The paper calibrates its simulator with MonetDB execution traces of
//! the 22 TPC-H queries at scale factor 5: per-operator times and the
//! column/index BATs each query touches. Those traces are not available,
//! so this module synthesizes the closest equivalent (see DESIGN.md §4):
//!
//! * the real TPC-H schema at SF-5 row counts, with realistic per-column
//!   byte widths plus the foreign-key join indices the paper mentions,
//! * the real column footprint of each of the 22 query classes,
//! * per-class work (CPU core-seconds) normalized so the single-node run
//!   reproduces the paper's ≈315 s for 1200 queries on 4 cores,
//! * columns partitioned into fragments small enough to circulate
//!   ("we assume each partition to be an individual BAT easily fitting
//!   in main memory"),
//! * the paper's calibration rule: pins are scheduled `OpT` after the
//!   previous reception; a query finishes `T` after its last pin
//!   ([`crate::spec::ExecModel::PinSchedule`]).
//!
//! The query mix follows the paper: "The scheduling of the queries
//! follows a Gaussian distribution with mean 10 and standard deviation
//! 2. On this distribution the fastest queries are the ones with higher
//! probability to be scheduled."

use crate::dataset::Dataset;
use crate::spec::{ExecModel, QuerySpec};
use datacyclotron::BatId;
use netsim::{DetRng, SimDuration, SimTime};
use std::collections::HashMap;

/// Maximum fragment size: well under the 200 MB node buffers.
pub const MAX_FRAGMENT_BYTES: u64 = 48 * 1024 * 1024;

/// SF-5 row counts.
const ROWS_L: u64 = 30_000_000;
const ROWS_O: u64 = 7_500_000;
const ROWS_C: u64 = 750_000;
const ROWS_P: u64 = 1_000_000;
const ROWS_PS: u64 = 4_000_000;
const ROWS_S: u64 = 50_000;
const ROWS_N: u64 = 25;
const ROWS_R: u64 = 5;

/// (table, column, bytes-per-row, rows). Join indices (`idx_*`) model
/// "the indexes created for the TPC-H tables to speed up foreign key
/// processing".
fn schema() -> Vec<(&'static str, &'static str, u64, u64)> {
    vec![
        // lineitem
        ("lineitem", "l_orderkey", 4, ROWS_L),
        ("lineitem", "l_partkey", 4, ROWS_L),
        ("lineitem", "l_suppkey", 4, ROWS_L),
        ("lineitem", "l_quantity", 8, ROWS_L),
        ("lineitem", "l_extendedprice", 8, ROWS_L),
        ("lineitem", "l_discount", 8, ROWS_L),
        ("lineitem", "l_tax", 8, ROWS_L),
        ("lineitem", "l_returnflag", 1, ROWS_L),
        ("lineitem", "l_linestatus", 1, ROWS_L),
        ("lineitem", "l_shipdate", 4, ROWS_L),
        ("lineitem", "l_commitdate", 4, ROWS_L),
        ("lineitem", "l_receiptdate", 4, ROWS_L),
        ("lineitem", "l_shipinstruct", 20, ROWS_L),
        ("lineitem", "l_shipmode", 10, ROWS_L),
        // orders
        ("orders", "o_orderkey", 4, ROWS_O),
        ("orders", "o_custkey", 4, ROWS_O),
        ("orders", "o_orderstatus", 1, ROWS_O),
        ("orders", "o_totalprice", 8, ROWS_O),
        ("orders", "o_orderdate", 4, ROWS_O),
        ("orders", "o_orderpriority", 15, ROWS_O),
        ("orders", "o_shippriority", 4, ROWS_O),
        ("orders", "o_comment", 50, ROWS_O),
        // customer
        ("customer", "c_custkey", 4, ROWS_C),
        ("customer", "c_name", 20, ROWS_C),
        ("customer", "c_address", 30, ROWS_C),
        ("customer", "c_nationkey", 4, ROWS_C),
        ("customer", "c_phone", 15, ROWS_C),
        ("customer", "c_acctbal", 8, ROWS_C),
        ("customer", "c_mktsegment", 10, ROWS_C),
        ("customer", "c_comment", 80, ROWS_C),
        // part
        ("part", "p_partkey", 4, ROWS_P),
        ("part", "p_name", 35, ROWS_P),
        ("part", "p_mfgr", 25, ROWS_P),
        ("part", "p_brand", 10, ROWS_P),
        ("part", "p_type", 25, ROWS_P),
        ("part", "p_size", 4, ROWS_P),
        ("part", "p_container", 10, ROWS_P),
        // partsupp
        ("partsupp", "ps_partkey", 4, ROWS_PS),
        ("partsupp", "ps_suppkey", 4, ROWS_PS),
        ("partsupp", "ps_availqty", 4, ROWS_PS),
        ("partsupp", "ps_supplycost", 8, ROWS_PS),
        // supplier
        ("supplier", "s_suppkey", 4, ROWS_S),
        ("supplier", "s_name", 20, ROWS_S),
        ("supplier", "s_address", 30, ROWS_S),
        ("supplier", "s_nationkey", 4, ROWS_S),
        ("supplier", "s_phone", 15, ROWS_S),
        ("supplier", "s_acctbal", 8, ROWS_S),
        // nation / region
        ("nation", "n_nationkey", 4, ROWS_N),
        ("nation", "n_name", 20, ROWS_N),
        ("nation", "n_regionkey", 4, ROWS_N),
        ("region", "r_regionkey", 4, ROWS_R),
        ("region", "r_name", 20, ROWS_R),
        // FK join indices.
        ("idx", "l_to_o", 8, ROWS_L),
        ("idx", "l_to_p", 8, ROWS_L),
        ("idx", "l_to_s", 8, ROWS_L),
        ("idx", "o_to_c", 8, ROWS_O),
        ("idx", "ps_to_p", 8, ROWS_PS),
        ("idx", "ps_to_s", 8, ROWS_PS),
    ]
}

/// Column footprint per query class (1-based): the columns (and join
/// indices) each TPC-H query touches, per the specification.
fn footprints() -> Vec<Vec<(&'static str, &'static str)>> {
    vec![
        // Q1
        vec![
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_tax"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_linestatus"),
            ("lineitem", "l_shipdate"),
        ],
        // Q2
        vec![
            ("part", "p_partkey"),
            ("part", "p_mfgr"),
            ("part", "p_size"),
            ("part", "p_type"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_nationkey"),
            ("supplier", "s_phone"),
            ("supplier", "s_acctbal"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "ps_to_p"),
            ("idx", "ps_to_s"),
        ],
        // Q3
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_mktsegment"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_shippriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q4
        vec![
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_orderpriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("idx", "l_to_o"),
        ],
        // Q5
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("nation", "n_regionkey"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q6
        vec![
            ("lineitem", "l_shipdate"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
        ],
        // Q7
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_s"),
            ("idx", "o_to_c"),
        ],
        // Q8
        vec![
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("customer", "c_custkey"),
            ("customer", "c_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_regionkey"),
            ("nation", "n_name"),
            ("region", "r_regionkey"),
            ("region", "r_name"),
            ("idx", "l_to_p"),
        ],
        // Q9
        vec![
            ("part", "p_partkey"),
            ("part", "p_name"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_quantity"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderdate"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_p"),
            ("idx", "l_to_s"),
        ],
        // Q10
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_name"),
            ("customer", "c_acctbal"),
            ("customer", "c_address"),
            ("customer", "c_phone"),
            ("customer", "c_comment"),
            ("customer", "c_nationkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_returnflag"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q11
        vec![
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_availqty"),
            ("partsupp", "ps_supplycost"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "ps_to_s"),
        ],
        // Q12
        vec![
            ("orders", "o_orderkey"),
            ("orders", "o_orderpriority"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_commitdate"),
            ("lineitem", "l_receiptdate"),
            ("lineitem", "l_shipdate"),
            ("idx", "l_to_o"),
        ],
        // Q13
        vec![
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_comment"),
            ("idx", "o_to_c"),
        ],
        // Q14
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("part", "p_partkey"),
            ("part", "p_type"),
            ("idx", "l_to_p"),
        ],
        // Q15
        vec![
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipdate"),
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_phone"),
            ("idx", "l_to_s"),
        ],
        // Q16
        vec![
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_type"),
            ("part", "p_size"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("idx", "ps_to_p"),
        ],
        // Q17
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
            ("idx", "l_to_p"),
        ],
        // Q18
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_name"),
            ("orders", "o_orderkey"),
            ("orders", "o_custkey"),
            ("orders", "o_orderdate"),
            ("orders", "o_totalprice"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_quantity"),
            ("idx", "l_to_o"),
            ("idx", "o_to_c"),
        ],
        // Q19
        vec![
            ("lineitem", "l_partkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_extendedprice"),
            ("lineitem", "l_discount"),
            ("lineitem", "l_shipmode"),
            ("lineitem", "l_shipinstruct"),
            ("part", "p_partkey"),
            ("part", "p_brand"),
            ("part", "p_container"),
            ("part", "p_size"),
            ("idx", "l_to_p"),
        ],
        // Q20
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_address"),
            ("supplier", "s_nationkey"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("partsupp", "ps_partkey"),
            ("partsupp", "ps_suppkey"),
            ("partsupp", "ps_availqty"),
            ("lineitem", "l_partkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_quantity"),
            ("lineitem", "l_shipdate"),
            ("part", "p_partkey"),
            ("part", "p_name"),
        ],
        // Q21
        vec![
            ("supplier", "s_suppkey"),
            ("supplier", "s_name"),
            ("supplier", "s_nationkey"),
            ("lineitem", "l_orderkey"),
            ("lineitem", "l_suppkey"),
            ("lineitem", "l_receiptdate"),
            ("lineitem", "l_commitdate"),
            ("orders", "o_orderkey"),
            ("orders", "o_orderstatus"),
            ("nation", "n_nationkey"),
            ("nation", "n_name"),
            ("idx", "l_to_s"),
            ("idx", "l_to_o"),
        ],
        // Q22
        vec![
            ("customer", "c_custkey"),
            ("customer", "c_phone"),
            ("customer", "c_acctbal"),
            ("orders", "o_custkey"),
        ],
    ]
}

/// Relative CPU work per class (scan-heavy and many-join queries cost
/// more; normalized against the paper's single-node total).
const REL_WORK: [f64; 22] = [
    10.0, // Q1
    1.5,  // Q2
    2.5,  // Q3
    1.8,  // Q4
    3.0,  // Q5
    1.2,  // Q6
    2.8,  // Q7
    3.2,  // Q8
    6.0,  // Q9
    2.6,  // Q10
    0.8,  // Q11
    1.6,  // Q12
    2.2,  // Q13
    1.0,  // Q14
    1.2,  // Q15
    1.0,  // Q16
    1.4,  // Q17
    4.5,  // Q18
    1.3,  // Q19
    1.8,  // Q20
    5.0,  // Q21
    0.7,  // Q22
];

/// The paper's single-node anchor: 1200 queries on 4 cores in ≈317 s at
/// ≈99.7% utilization ⇒ mean work ≈ 1.05 core-seconds per query.
pub const TARGET_MEAN_CORE_SECONDS: f64 = 1.05;

/// A fully materialized TPC-H ring workload.
pub struct TpchWorkload {
    pub dataset: Dataset,
    pub queries: Vec<QuerySpec>,
    /// Fragment name per BatId index (`table.column#k`).
    pub fragment_names: Vec<String>,
    /// Fragments per query class (1-based indexing: `class_frags[0]` is Q1).
    pub class_frags: Vec<Vec<BatId>>,
    /// Normalized core-seconds per class.
    pub class_work: Vec<f64>,
}

#[derive(Clone, Debug)]
pub struct TpchParams {
    pub queries_per_node: usize,
    pub registration_rate: f64,
    pub class_mean: f64,
    pub class_stddev: f64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            queries_per_node: 1200,
            registration_rate: 8.0,
            class_mean: 10.0,
            class_stddev: 2.0,
        }
    }
}

/// Probability mass of each class under the clipped Gaussian mix.
fn class_probabilities(mean: f64, sd: f64) -> [f64; 22] {
    // Discrete approximation: mass of round(N(mean, sd²)) clipped to 1..22.
    let mut p = [0.0f64; 22];
    let norm = |x: f64| (-(x * x) / 2.0).exp();
    for (i, slot) in p.iter_mut().enumerate() {
        let c = (i + 1) as f64;
        *slot = norm((c - mean) / sd);
    }
    let total: f64 = p.iter().sum();
    for v in &mut p {
        *v /= total;
    }
    p
}

/// Build the workload for a ring of `nodes`.
pub fn generate(params: &TpchParams, nodes: usize, seed: u64) -> TpchWorkload {
    let mut rng = DetRng::new(seed);

    // 1. Fragment the schema.
    let mut sizes: Vec<u64> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut frags_of: HashMap<(&'static str, &'static str), Vec<BatId>> = HashMap::new();
    for (table, column, width, rows) in schema() {
        let bytes = width * rows;
        let nfrags = bytes.div_ceil(MAX_FRAGMENT_BYTES).max(1);
        let per_frag = bytes / nfrags;
        let mut ids = Vec::with_capacity(nfrags as usize);
        for k in 0..nfrags {
            let id = BatId(sizes.len() as u32);
            sizes.push(per_frag.max(1));
            owners.push(rng.index(nodes));
            names.push(format!("{table}.{column}#{k}"));
            ids.push(id);
        }
        frags_of.insert((table, column), ids);
    }
    let dataset = Dataset { sizes, owners };

    // 2. Class footprints in fragments.
    let class_frags: Vec<Vec<BatId>> = footprints()
        .iter()
        .map(|cols| {
            cols.iter()
                .flat_map(|&(t, c)| {
                    frags_of
                        .get(&(t, c))
                        .unwrap_or_else(|| panic!("footprint references unknown column {t}.{c}"))
                        .clone()
                })
                .collect()
        })
        .collect();

    // 3. Normalize work so the mix averages TARGET_MEAN_CORE_SECONDS.
    let probs = class_probabilities(params.class_mean, params.class_stddev);
    let expected_rel: f64 = probs.iter().zip(REL_WORK.iter()).map(|(p, w)| p * w).sum();
    let scale = TARGET_MEAN_CORE_SECONDS / expected_rel;
    let class_work: Vec<f64> = REL_WORK.iter().map(|w| w * scale).collect();

    // 4. Emit the per-node query streams.
    let interval = 1.0 / params.registration_rate;
    let mut queries = Vec::with_capacity(nodes * params.queries_per_node);
    for node in 0..nodes {
        for i in 0..params.queries_per_node {
            let class = loop {
                let c = rng.normal(params.class_mean, params.class_stddev).round();
                if (1.0..=22.0).contains(&c) {
                    break c as usize;
                }
            };
            let needs = class_frags[class - 1].clone();
            let work = class_work[class - 1];
            queries.push(QuerySpec {
                arrival: SimTime::from_secs_f64(i as f64 * interval),
                node,
                needs: needs.clone(),
                model: ExecModel::PinSchedule { segments: split_segments(work, needs.len()) },
                tag: class as u32,
            });
        }
    }
    queries.sort_by_key(|q| (q.arrival, q.node));

    TpchWorkload { dataset, queries, fragment_names: names, class_frags, class_work }
}

/// Split total work into `k + 1` operator segments: a short prefix before
/// the first pin, even mid-plan segments, and a heavier final segment
/// (result construction happens after the last reception — see the
/// paper's calibration description).
fn split_segments(total_core_seconds: f64, k: usize) -> Vec<SimDuration> {
    debug_assert!(k >= 1);
    let first = 0.10;
    let last = 0.20;
    let middle = (1.0 - first - last) / k as f64;
    let mut out = Vec::with_capacity(k + 1);
    out.push(SimDuration::from_secs_f64(total_core_seconds * first));
    for _ in 1..k {
        out.push(SimDuration::from_secs_f64(total_core_seconds * middle));
    }
    out.push(SimDuration::from_secs_f64(total_core_seconds * (middle + last)));
    out
}

/// Executable TPC-H: deterministic micro-scale data plus the SQL texts
/// of the acceptance subset (Q1, Q3, Q6), expressed in the engine's SQL
/// dialect so they run end-to-end over a live ring.
///
/// The trace synthesizer above models the paper's SF-5 calibration; this
/// section is its executable counterpart. Sizes are tiny (the ring moves
/// fragments, not gigabytes, in CI), but the shapes are faithful:
/// `customer → orders → lineitem` foreign keys, dates as `yyyymmdd`
/// integers, prices in cents. The dialect has no scalar arithmetic, so
/// each query is the standard simplified form: `revenue` is
/// `sum(l_extendedprice)` rather than `sum(price * (1 - discount))`.
pub mod sql {
    use batstore::Column;
    use netsim::DetRng;

    /// Deterministic row targets at scale 1.0. `DC_SCALE`-style scaling
    /// multiplies these; the FK structure is preserved at any scale.
    const CUSTOMERS: usize = 30;
    const ORDERS_PER_CUSTOMER: usize = 4;
    const MAX_LINES_PER_ORDER: usize = 6;

    const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
    const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
    const LINE_STATUS: [&str; 2] = ["O", "F"];

    /// Columns for one table, in declared order, ready for
    /// `RingNode::load_table`.
    pub type Table = Vec<(&'static str, Column)>;

    /// The three acceptance tables.
    pub struct TpchData {
        pub customer: Table,
        pub orders: Table,
        pub lineitem: Table,
    }

    /// A `yyyymmdd` integer date within 1992-01-01 .. 1998-12-28.
    fn date(rng: &mut DetRng) -> i32 {
        let y = rng.uniform_u64(1992, 1998) as i32;
        let m = rng.uniform_u64(1, 12) as i32;
        let d = rng.uniform_u64(1, 28) as i32;
        y * 10000 + m * 100 + d
    }

    /// Generate the dataset deterministically. `scale` multiplies the
    /// row targets (0.25 for quick CI runs, 1.0 default); identical
    /// `(scale, seed)` always yields identical tables.
    pub fn generate(scale: f64, seed: u64) -> TpchData {
        let mut rng = DetRng::new(seed);
        let ncust = ((CUSTOMERS as f64 * scale).round() as usize).max(3);

        let mut c_custkey = Vec::new();
        let mut c_mktsegment = Vec::new();
        let mut c_nationkey = Vec::new();
        for k in 1..=ncust {
            c_custkey.push(k as i32);
            c_mktsegment.push(SEGMENTS[rng.index(SEGMENTS.len())]);
            c_nationkey.push(rng.uniform_u64(0, 24) as i32);
        }

        let mut o_orderkey = Vec::new();
        let mut o_custkey = Vec::new();
        let mut o_orderdate = Vec::new();
        let mut o_shippriority = Vec::new();
        let mut o_totalprice = Vec::new();
        for c in 1..=ncust {
            for _ in 0..ORDERS_PER_CUSTOMER {
                o_orderkey.push(o_orderkey.len() as i32 + 1);
                o_custkey.push(c as i32);
                o_orderdate.push(date(&mut rng));
                o_shippriority.push(0i32);
                o_totalprice.push(rng.uniform_u64(1_000, 500_000) as i64);
            }
        }

        let mut l_orderkey = Vec::new();
        let mut l_quantity = Vec::new();
        let mut l_extendedprice = Vec::new();
        let mut l_discount = Vec::new();
        let mut l_returnflag = Vec::new();
        let mut l_linestatus = Vec::new();
        let mut l_shipdate = Vec::new();
        for &ok in &o_orderkey {
            let lines = rng.uniform_u64(1, MAX_LINES_PER_ORDER as u64);
            for _ in 0..lines {
                l_orderkey.push(ok);
                l_quantity.push(rng.uniform_u64(1, 50) as i64);
                l_extendedprice.push(rng.uniform_u64(100, 100_000) as i64);
                l_discount.push(rng.uniform_u64(0, 10) as i64);
                l_returnflag.push(RETURN_FLAGS[rng.index(RETURN_FLAGS.len())]);
                l_linestatus.push(LINE_STATUS[rng.index(LINE_STATUS.len())]);
                l_shipdate.push(date(&mut rng));
            }
        }

        TpchData {
            customer: vec![
                ("c_custkey", Column::from(c_custkey)),
                ("c_mktsegment", Column::from(c_mktsegment)),
                ("c_nationkey", Column::from(c_nationkey)),
            ],
            orders: vec![
                ("o_orderkey", Column::from(o_orderkey)),
                ("o_custkey", Column::from(o_custkey)),
                ("o_orderdate", Column::from(o_orderdate)),
                ("o_shippriority", Column::from(o_shippriority)),
                ("o_totalprice", Column::from(o_totalprice)),
            ],
            lineitem: vec![
                ("l_orderkey", Column::from(l_orderkey)),
                ("l_quantity", Column::from(l_quantity)),
                ("l_extendedprice", Column::from(l_extendedprice)),
                ("l_discount", Column::from(l_discount)),
                ("l_returnflag", Column::from(l_returnflag)),
                ("l_linestatus", Column::from(l_linestatus)),
                ("l_shipdate", Column::from(l_shipdate)),
            ],
        }
    }

    /// Q1 — pricing summary report: scan + multi-column GROUP BY.
    pub const Q1: &str = "select l_returnflag, l_linestatus, sum(l_quantity), \
         sum(l_extendedprice), avg(l_discount), count(*) \
         from lineitem where l_shipdate <= 19980902 \
         group by l_returnflag, l_linestatus order by l_returnflag";

    /// Q3 — shipping priority: a three-table equi-join chain
    /// (customer → orders → lineitem) with GROUP BY over three keys,
    /// written in explicit `INNER JOIN … ON` syntax.
    pub const Q3: &str = "select o.o_orderkey, o.o_orderdate, o.o_shippriority, \
         sum(l.l_extendedprice) \
         from customer c \
         inner join orders o on c.c_custkey = o.o_custkey \
         inner join lineitem l on l.l_orderkey = o.o_orderkey \
         where c.c_mktsegment = 'BUILDING' \
         and o.o_orderdate < 19950315 and l.l_shipdate > 19950315 \
         group by o.o_orderkey, o.o_orderdate, o.o_shippriority \
         order by o.o_orderkey limit 10";

    /// Q6 — forecasting revenue change: selective range scan with
    /// BETWEEN predicates and ungrouped aggregates.
    pub const Q6: &str = "select sum(l_extendedprice), count(*) \
         from lineitem where l_shipdate between 19940101 and 19941231 \
         and l_discount between 5 and 7 and l_quantity < 24";

    /// The acceptance subset: `(name, sql)` in run order.
    pub fn queries() -> Vec<(&'static str, &'static str)> {
        vec![("q1", Q1), ("q3", Q3), ("q6", Q6)]
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn rows(t: &Table) -> usize {
            t[0].1.len()
        }

        #[test]
        fn deterministic_and_fk_consistent() {
            let a = generate(1.0, 42);
            let b = generate(1.0, 42);
            for (x, y) in
                [(&a.customer, &b.customer), (&a.orders, &b.orders), (&a.lineitem, &b.lineitem)]
            {
                for ((an, ac), (bn, bc)) in x.iter().zip(y.iter()) {
                    assert_eq!(an, bn);
                    assert_eq!(ac, bc);
                }
            }
            // Every o_custkey references a customer; every l_orderkey an order.
            let ncust = rows(&a.customer) as i32;
            let nord = rows(&a.orders) as i32;
            if let Column::Int(v) = &a.orders[1].1 {
                assert!(v.iter().all(|&c| (1..=ncust).contains(&c)));
            } else {
                panic!("o_custkey not Int");
            }
            if let Column::Int(v) = &a.lineitem[0].1 {
                assert!(v.iter().all(|&o| (1..=nord).contains(&o)));
            } else {
                panic!("l_orderkey not Int");
            }
        }

        #[test]
        fn scale_changes_row_counts() {
            let small = generate(0.25, 7);
            let big = generate(1.0, 7);
            assert!(rows(&small.customer) < rows(&big.customer));
            assert!(rows(&small.lineitem) < rows(&big.lineitem));
            assert!(rows(&small.customer) >= 3, "scale floor keeps joins non-trivial");
        }

        #[test]
        fn dates_are_valid_yyyymmdd() {
            let d = generate(1.0, 3);
            if let Column::Int(v) = &d.lineitem[6].1 {
                for &x in v {
                    let (y, m, day) = (x / 10000, (x / 100) % 100, x % 100);
                    assert!((1992..=1998).contains(&y), "{x}");
                    assert!((1..=12).contains(&m), "{x}");
                    assert!((1..=28).contains(&day), "{x}");
                }
            } else {
                panic!("l_shipdate not Int");
            }
        }
    }
}

/// Model for the paper's "MonetDB" row of Table 4: the real DBMS reaches
/// only ~70% CPU utilization due to thread management and client context
/// switches, so the same work takes proportionally longer than the
/// perfectly parallelized single-node simulation.
pub fn monetdb_baseline_secs(total_core_seconds: f64, cores: usize, efficiency: f64) -> f64 {
    total_core_seconds / (cores as f64 * efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_fragments_bounded() {
        let w = generate(&TpchParams::default(), 4, 1);
        for &s in &w.dataset.sizes {
            assert!(s <= MAX_FRAGMENT_BYTES, "fragment too large: {s}");
        }
        // SF-5 raw volume: several GB.
        let total = w.dataset.total_bytes();
        assert!(total > 3_000_000_000 && total < 10_000_000_000, "total {total}");
    }

    #[test]
    fn footprints_cover_all_22_queries() {
        assert_eq!(footprints().len(), 22);
        let w = generate(&TpchParams::default(), 4, 1);
        assert_eq!(w.class_frags.len(), 22);
        for (i, frags) in w.class_frags.iter().enumerate() {
            assert!(!frags.is_empty(), "Q{} has no fragments", i + 1);
        }
        // Q1 is lineitem-only and scan-heavy: many fragments.
        assert!(w.class_frags[0].len() >= 7);
        // Q22 is small.
        assert!(w.class_frags[21].len() < w.class_frags[0].len());
    }

    #[test]
    fn work_mix_hits_the_paper_anchor() {
        let w = generate(&TpchParams::default(), 1, 1);
        let total: f64 = w.queries.iter().map(|q| q.net_work().as_secs_f64()).sum();
        // 1200 queries ≈ 1260 core-seconds → 315 s on 4 perfect cores.
        let per_query = total / w.queries.len() as f64;
        assert!((per_query - TARGET_MEAN_CORE_SECONDS).abs() < 0.15, "mean work {per_query}");
    }

    #[test]
    fn queries_valid_and_classes_near_10() {
        let w = generate(&TpchParams::default(), 2, 3);
        assert_eq!(w.queries.len(), 2400);
        let mut class_sum = 0.0;
        for q in &w.queries {
            q.validate().unwrap();
            assert!((1..=22).contains(&(q.tag as usize)));
            class_sum += q.tag as f64;
        }
        let mean = class_sum / w.queries.len() as f64;
        assert!((mean - 10.0).abs() < 0.5, "class mean {mean}");
    }

    #[test]
    fn registration_takes_150_seconds() {
        let p = TpchParams::default();
        let w = generate(&p, 1, 1);
        let last = w.queries.iter().map(|q| q.arrival).max().unwrap();
        assert!((last.as_secs_f64() - 149.875).abs() < 0.2, "{last:?}");
    }

    #[test]
    fn segments_sum_to_work() {
        let segs = split_segments(2.0, 5);
        assert_eq!(segs.len(), 6);
        let total: f64 = segs.iter().map(|s| s.as_secs_f64()).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monetdb_row_slower_than_ideal() {
        // 1260 core-s on 4 cores: ideal 315 s; at 70% efficiency ≈ 450 s,
        // within the ballpark of the paper's 420 s.
        let ideal = monetdb_baseline_secs(1260.0, 4, 1.0);
        let monet = monetdb_baseline_secs(1260.0, 4, 0.75);
        assert!((ideal - 315.0).abs() < 1.0);
        assert!(monet > 400.0 && monet < 440.0, "{monet}");
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&TpchParams::default(), 3, 9);
        let b = generate(&TpchParams::default(), 3, 9);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.dataset.owners, b.dataset.owners);
    }
}
