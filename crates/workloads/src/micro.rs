//! §5.1 — the uniform micro-benchmark.
//!
//! "The experiment consists of firing 80 queries per second on each of
//! the 10 nodes over a period of 60 seconds … a synthetic workload that
//! consists of queries requesting between one and five randomly chosen
//! BATs. The net query execution times … are arbitrarily determined by
//! scoring each accessed BAT with a randomly chosen processing time
//! between 100 msec and 200 msec."

use crate::dataset::Dataset;
use crate::spec::{ExecModel, QuerySpec};
use netsim::{DetRng, SimDuration, SimTime};

#[derive(Clone, Debug)]
pub struct MicroParams {
    pub queries_per_second_per_node: f64,
    pub duration: SimDuration,
    pub min_bats: usize,
    pub max_bats: usize,
    pub min_proc: SimDuration,
    pub max_proc: SimDuration,
}

impl Default for MicroParams {
    fn default() -> Self {
        MicroParams {
            queries_per_second_per_node: 80.0,
            duration: SimDuration::from_secs(60),
            min_bats: 1,
            max_bats: 5,
            min_proc: SimDuration::from_millis(100),
            max_proc: SimDuration::from_millis(200),
        }
    }
}

/// Generate the workload for an `nodes`-node ring over `dataset`.
/// Queries access remote BATs only (§5: "we are primarily interested in
/// the adaptive behavior of the ring structure itself").
pub fn generate(
    params: &MicroParams,
    dataset: &Dataset,
    nodes: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    let mut rng = DetRng::new(seed);
    let remote: Vec<Vec<datacyclotron::BatId>> =
        (0..nodes).map(|n| dataset.remote_bats(n)).collect();
    let mut out = Vec::new();
    let interval = 1.0 / params.queries_per_second_per_node;
    for (node, pool) in remote.iter().enumerate() {
        // Index-based arrivals avoid float-accumulation drift in counts.
        for i in 0.. {
            let t = i as f64 * interval;
            if t >= params.duration.as_secs_f64() {
                break;
            }
            let k = rng.uniform_u64(params.min_bats as u64, params.max_bats as u64) as usize;
            let mut needs = Vec::with_capacity(k);
            let mut proc = Vec::with_capacity(k);
            for _ in 0..k {
                needs.push(pool[rng.index(pool.len())]);
                proc.push(SimDuration::from_secs_f64(
                    rng.uniform_f64(params.min_proc.as_secs_f64(), params.max_proc.as_secs_f64()),
                ));
            }
            out.push(QuerySpec {
                arrival: SimTime::from_secs_f64(t),
                node,
                needs,
                model: ExecModel::PerBat { proc },
                tag: 0,
            });
        }
    }
    out.sort_by_key(|q| q.arrival);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Dataset, Vec<QuerySpec>) {
        let d = Dataset::paper_8gb(10, 1);
        let qs = generate(&MicroParams::default(), &d, 10, 2);
        (d, qs)
    }

    #[test]
    fn paper_scale_48000_queries() {
        let (_, qs) = setup();
        assert_eq!(qs.len(), 48_000, "80 q/s × 10 nodes × 60 s");
    }

    #[test]
    fn all_specs_valid_and_remote_only() {
        let (d, qs) = setup();
        for q in &qs {
            q.validate().unwrap();
            assert!((1..=5).contains(&q.needs.len()));
            for &b in &q.needs {
                assert_ne!(d.owner_of(b), q.node, "workload must be remote-only");
            }
        }
    }

    #[test]
    fn processing_times_in_range() {
        let (_, qs) = setup();
        for q in &qs {
            let ExecModel::PerBat { proc } = &q.model else { panic!() };
            for p in proc {
                assert!(
                    (100..=200).contains(&p.as_millis()),
                    "proc time {} ms out of range",
                    p.as_millis()
                );
            }
        }
    }

    #[test]
    fn arrivals_sorted_within_duration() {
        let (_, qs) = setup();
        assert!(qs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(qs.last().unwrap().arrival < SimTime::from_secs(60));
    }

    #[test]
    fn deterministic() {
        let d = Dataset::paper_8gb(10, 1);
        let a = generate(&MicroParams::default(), &d, 10, 5);
        let b = generate(&MicroParams::default(), &d, 10, 5);
        assert_eq!(a, b);
    }
}
