//! # dc-workloads — the paper's workload generators
//!
//! Every evaluation scenario of the paper (§5, §6.3) as a deterministic,
//! seeded generator producing [`QuerySpec`]s over a [`Dataset`]:
//!
//! * [`micro`] — §5.1: 10 nodes × 80 q/s for 60 s (48 000 queries), each
//!   touching 1–5 random remote BATs at 100–200 ms each,
//! * [`skewed`] — §5.2 Table 3: four overlapping skewed workloads
//!   SW1–SW4 over disjoint hot sets,
//! * [`gaussian`] — §5.3: Gaussian data access N(500, 50²),
//! * [`tpch`] — §5.4: the TPC-H SF-5 trace synthesizer (column
//!   footprints per query class, operator segments, 4-core pin
//!   scheduling),
//! * [`scaling`] — §6.3: the Gaussian scenario at 5/10/15/20 nodes with
//!   constant total workload (Figs 10–11).

pub mod dataset;
pub mod gaussian;
pub mod micro;
pub mod scaling;
pub mod skewed;
pub mod spec;
pub mod tpch;

pub use dataset::Dataset;
pub use spec::{ExecModel, QuerySpec};
