//! Query specifications consumed by the simulator driver.

use datacyclotron::BatId;
use netsim::{SimDuration, SimTime};

/// How a query's execution is modeled.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecModel {
    /// §5.1–§5.3: each accessed BAT is "scored with a randomly chosen
    /// processing time"; pins unblock on arrival and process
    /// concurrently (dataflow parallelism, ample cores). `proc[i]`
    /// pairs with `needs[i]`.
    PerBat { proc: Vec<SimDuration> },
    /// §5.4 calibration: pins issued sequentially; `segments[i]` is the
    /// CPU time (on one core) between the (i-1)-th reception and the
    /// i-th pin; the final segment runs after the last reception.
    /// `segments.len() == needs.len() + 1`.
    PinSchedule { segments: Vec<SimDuration> },
}

/// One query instance.
#[derive(Clone, Debug, PartialEq)]
pub struct QuerySpec {
    /// When the query is registered at its node.
    pub arrival: SimTime,
    /// Ring position where the query settles.
    pub node: usize,
    /// The BATs it accesses (pin order for `PinSchedule`).
    pub needs: Vec<BatId>,
    pub model: ExecModel,
    /// Workload tag (e.g. SW1–SW4 in §5.2; query class in §5.4) for
    /// per-workload reporting.
    pub tag: u32,
}

impl QuerySpec {
    /// Validate internal consistency; generators are tested through this.
    pub fn validate(&self) -> Result<(), String> {
        if self.needs.is_empty() {
            return Err("query needs at least one BAT".into());
        }
        match &self.model {
            ExecModel::PerBat { proc } => {
                if proc.len() != self.needs.len() {
                    return Err(format!(
                        "PerBat proc len {} != needs len {}",
                        proc.len(),
                        self.needs.len()
                    ));
                }
            }
            ExecModel::PinSchedule { segments } => {
                if segments.len() != self.needs.len() + 1 {
                    return Err(format!(
                        "PinSchedule segments len {} != needs len {} + 1",
                        segments.len(),
                        self.needs.len()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Net execution time assuming all data local (lower bound on the
    /// lifetime).
    pub fn net_work(&self) -> SimDuration {
        match &self.model {
            ExecModel::PerBat { proc } => {
                proc.iter().copied().fold(SimDuration::ZERO, |a, b| a + b)
            }
            ExecModel::PinSchedule { segments } => {
                segments.iter().copied().fold(SimDuration::ZERO, |a, b| a + b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_mismatches() {
        let q = QuerySpec {
            arrival: SimTime::ZERO,
            node: 0,
            needs: vec![BatId(1), BatId(2)],
            model: ExecModel::PerBat { proc: vec![SimDuration::from_millis(100)] },
            tag: 0,
        };
        assert!(q.validate().is_err());
        let q = QuerySpec {
            needs: vec![BatId(1)],
            model: ExecModel::PerBat { proc: vec![SimDuration::from_millis(100)] },
            ..q
        };
        q.validate().unwrap();
    }

    #[test]
    fn pin_schedule_needs_trailing_segment() {
        let q = QuerySpec {
            arrival: SimTime::ZERO,
            node: 0,
            needs: vec![BatId(1)],
            model: ExecModel::PinSchedule {
                segments: vec![SimDuration::from_millis(5), SimDuration::from_millis(7)],
            },
            tag: 3,
        };
        q.validate().unwrap();
        assert_eq!(q.net_work().as_millis(), 12);
    }

    #[test]
    fn empty_needs_rejected() {
        let q = QuerySpec {
            arrival: SimTime::ZERO,
            node: 0,
            needs: vec![],
            model: ExecModel::PerBat { proc: vec![] },
            tag: 0,
        };
        assert!(q.validate().is_err());
    }
}
