//! §6.1 intra-query parallelism: "a query can be split into independent
//! sub-queries to consume disjoint data subsets … All sub-queries are
//! then processed concurrently, each settling on a different node
//! following the basic procedures of a normal query. The individual
//! intermediate results are combined to form the final query result."
//!
//! [`split_queries`] partitions a query's fragment footprint by owner
//! node — the natural disjoint subsets of the nomadic phase, since a
//! part that settles on an owner resolves those pins locally — capped
//! at [`SplitParams::max_parts`] parts. Each part is an ordinary
//! [`QuerySpec`] the driver runs unchanged; the returned [`SplitMap`]
//! lets the driver account the *parent* query: it finishes when its
//! last part finishes, plus a combination cost per extra part for
//! merging the intermediate results.

use dc_workloads::{Dataset, ExecModel, QuerySpec};
use netsim::{SimDuration, SimTime};

/// Splitting knobs.
#[derive(Clone, Copy, Debug)]
pub struct SplitParams {
    /// Upper bound on parts per query ("the number of sub-queries
    /// depend on the price attached dynamically" — we bound it
    /// statically; 1 disables splitting).
    pub max_parts: usize,
    /// Cost of combining one extra part's intermediate result into the
    /// final answer, charged at parent completion.
    pub merge_cost: SimDuration,
}

impl Default for SplitParams {
    fn default() -> Self {
        SplitParams { max_parts: 4, merge_cost: SimDuration::from_millis(5) }
    }
}

/// Part → parent bookkeeping produced by [`split_queries`].
#[derive(Clone, Debug)]
pub struct SplitMap {
    /// Parent index (into the original query list) of each part.
    pub parent_of: Vec<usize>,
    /// True for exactly one part per parent (registration accounting).
    pub is_primary: Vec<bool>,
    /// Original arrival per parent.
    pub parent_arrival: Vec<SimTime>,
    /// Original tag per parent.
    pub parent_tag: Vec<u32>,
    /// Number of parts each parent was split into.
    pub parts_of_parent: Vec<usize>,
    pub merge_cost: SimDuration,
}

impl SplitMap {
    /// Combination cost for a parent with `parts` parts: merging is
    /// only needed once the query was actually distributed.
    pub fn merge_cost_of(&self, parent: usize) -> SimDuration {
        let extra = self.parts_of_parent[parent].saturating_sub(1) as f64;
        self.merge_cost.mul_f64(extra)
    }
}

/// Partition `queries` into owner-affine parts (see module docs).
///
/// `PinSchedule` queries pass through unsplit: their sequential pin
/// chain encodes an operator dependency that cannot be consumed as
/// disjoint subsets.
pub fn split_queries(
    queries: &[QuerySpec],
    dataset: &Dataset,
    params: &SplitParams,
) -> (Vec<QuerySpec>, SplitMap) {
    assert!(params.max_parts >= 1, "max_parts of 0 would drop queries");
    let mut parts = Vec::with_capacity(queries.len());
    let mut map = SplitMap {
        parent_of: Vec::with_capacity(queries.len()),
        is_primary: Vec::with_capacity(queries.len()),
        parent_arrival: queries.iter().map(|q| q.arrival).collect(),
        parent_tag: queries.iter().map(|q| q.tag).collect(),
        parts_of_parent: Vec::with_capacity(queries.len()),
        merge_cost: params.merge_cost,
    };

    for (parent, q) in queries.iter().enumerate() {
        let groups = partition_needs(q, dataset, params.max_parts);
        map.parts_of_parent.push(groups.len());
        for (k, group) in groups.into_iter().enumerate() {
            parts.push(make_part(q, &group, dataset));
            map.parent_of.push(parent);
            map.is_primary.push(k == 0);
        }
    }
    (parts, map)
}

/// Group the need *indices* of `q` by owner, merging the smallest
/// groups until at most `max_parts` remain. Returns at least one group.
fn partition_needs(q: &QuerySpec, dataset: &Dataset, max_parts: usize) -> Vec<Vec<usize>> {
    if max_parts == 1 || q.needs.len() < 2 || matches!(q.model, ExecModel::PinSchedule { .. }) {
        return vec![(0..q.needs.len()).collect()];
    }
    // Owner → need indices, in first-appearance order for determinism.
    let mut owners: Vec<usize> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, &need) in q.needs.iter().enumerate() {
        let owner = dataset.owner_of(need);
        match owners.iter().position(|&o| o == owner) {
            Some(g) => groups[g].push(i),
            None => {
                owners.push(owner);
                groups.push(vec![i]);
            }
        }
    }
    // Fold the smallest groups together until the cap holds. Merging
    // smallest-into-smallest keeps the remaining parts owner-pure as
    // long as possible.
    while groups.len() > max_parts {
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let a = groups.pop().expect("len > max_parts >= 1");
        groups.last_mut().expect("len >= 1").extend(a);
    }
    groups
}

/// Build the sub-query for one group of need indices. The part settles
/// on the owner of its first need — the node where those pins are
/// local.
fn make_part(q: &QuerySpec, group: &[usize], dataset: &Dataset) -> QuerySpec {
    let needs = group.iter().map(|&i| q.needs[i]).collect::<Vec<_>>();
    let model = match &q.model {
        ExecModel::PerBat { proc } => {
            ExecModel::PerBat { proc: group.iter().map(|&i| proc[i]).collect() }
        }
        ExecModel::PinSchedule { segments } => {
            // Unsplit by construction (partition_needs), so the whole
            // schedule carries over.
            debug_assert_eq!(group.len(), q.needs.len());
            ExecModel::PinSchedule { segments: segments.clone() }
        }
    };
    QuerySpec { arrival: q.arrival, node: dataset.owner_of(needs[0]), needs, model, tag: q.tag }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacyclotron::BatId;

    /// 6 BATs: 0,1 owned by node 0; 2,3 by node 1; 4,5 by node 2.
    fn dataset() -> Dataset {
        Dataset { sizes: vec![1 << 20; 6], owners: vec![0, 0, 1, 1, 2, 2] }
    }

    fn per_bat(needs: Vec<BatId>) -> QuerySpec {
        let n = needs.len();
        QuerySpec {
            arrival: SimTime::from_millis(3),
            node: 0,
            needs,
            model: ExecModel::PerBat {
                proc: (0..n).map(|i| SimDuration::from_millis(10 * (i as u64 + 1))).collect(),
            },
            tag: 7,
        }
    }

    #[test]
    fn splits_by_owner_with_matching_proc() {
        let q = per_bat(vec![BatId(0), BatId(2), BatId(1), BatId(4)]);
        let (parts, map) = split_queries(&[q], &dataset(), &SplitParams::default());
        assert_eq!(parts.len(), 3);
        assert_eq!(map.parts_of_parent, vec![3]);
        // Owner-0 part keeps needs 0,1 with their original procs (10, 30 ms).
        let p0 = &parts[0];
        assert_eq!(p0.needs, vec![BatId(0), BatId(1)]);
        assert_eq!(p0.node, 0);
        let ExecModel::PerBat { proc } = &p0.model else { panic!() };
        assert_eq!(proc, &[SimDuration::from_millis(10), SimDuration::from_millis(30)]);
        // Every part validates and inherits arrival/tag.
        for p in &parts {
            p.validate().unwrap();
            assert_eq!(p.arrival, SimTime::from_millis(3));
            assert_eq!(p.tag, 7);
        }
        // Exactly one primary.
        assert_eq!(map.is_primary.iter().filter(|&&p| p).count(), 1);
    }

    #[test]
    fn parts_settle_on_their_owners() {
        let q = per_bat(vec![BatId(5), BatId(3)]);
        let (parts, _) = split_queries(&[q], &dataset(), &SplitParams::default());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].node, 2, "first group follows BAT 5's owner");
        assert_eq!(parts[1].node, 1);
    }

    #[test]
    fn max_parts_folds_smallest_groups() {
        let q = per_bat(vec![BatId(0), BatId(2), BatId(4), BatId(1)]);
        // 3 owner groups → capped at 2.
        let (parts, map) = split_queries(
            std::slice::from_ref(&q),
            &dataset(),
            &SplitParams { max_parts: 2, ..Default::default() },
        );
        assert_eq!(parts.len(), 2);
        assert_eq!(map.parts_of_parent, vec![2]);
        // Needs are preserved as a multiset.
        let mut all: Vec<u32> = parts.iter().flat_map(|p| p.needs.iter().map(|b| b.0)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 4]);
        // max_parts = 1 disables splitting entirely.
        let (parts, map) =
            split_queries(&[q], &dataset(), &SplitParams { max_parts: 1, ..Default::default() });
        assert_eq!(parts.len(), 1);
        assert_eq!(map.parts_of_parent, vec![1]);
    }

    #[test]
    fn single_need_and_pin_schedule_pass_through() {
        let single = per_bat(vec![BatId(4)]);
        let pin = QuerySpec {
            arrival: SimTime::ZERO,
            node: 1,
            needs: vec![BatId(0), BatId(4)],
            model: ExecModel::PinSchedule {
                segments: vec![
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(2),
                    SimDuration::from_millis(3),
                ],
            },
            tag: 0,
        };
        let (parts, map) =
            split_queries(&[single.clone(), pin.clone()], &dataset(), &SplitParams::default());
        assert_eq!(parts.len(), 2);
        assert_eq!(map.parts_of_parent, vec![1, 1]);
        // The pin-schedule query is byte-identical except placement
        // follows its first need's owner.
        assert_eq!(parts[1].needs, pin.needs);
        assert_eq!(parts[1].model, pin.model);
    }

    #[test]
    fn merge_cost_scales_with_extra_parts() {
        let q = per_bat(vec![BatId(0), BatId(2), BatId(4)]);
        let (_, map) = split_queries(
            &[q],
            &dataset(),
            &SplitParams { max_parts: 4, merge_cost: SimDuration::from_millis(6) },
        );
        assert_eq!(map.parts_of_parent, vec![3]);
        assert_eq!(map.merge_cost_of(0), SimDuration::from_millis(12));
    }

    #[test]
    fn deterministic_grouping() {
        let qs: Vec<QuerySpec> = (0..10)
            .map(|i| per_bat(vec![BatId(i % 6), BatId((i + 2) % 6), BatId((i + 4) % 6)]))
            .collect();
        let a = split_queries(&qs, &dataset(), &SplitParams::default());
        let b = split_queries(&qs, &dataset(), &SplitParams::default());
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.parent_of, b.1.parent_of);
    }
}
