//! The simulation driver: ring topology, event dispatch, query lifecycle.

use crate::cores::CoreSched;
use crate::measure::Measurements;
use crate::split::{self, SplitMap, SplitParams};
use datacyclotron::msg::BatHeader;
use datacyclotron::OwnedState;
use datacyclotron::{BatId, DcConfig, DcNode, Effect, NodeId, PinOutcome, QueryId, ReqMsg};
use dc_workloads::{Dataset, ExecModel, QuerySpec};
use netsim::{EnqueueOutcome, EventQueue, Link, LinkConfig, SimDuration, SimTime};
use std::collections::HashMap;

/// Simulation parameters; defaults follow the paper's §5 setup.
#[derive(Clone, Debug)]
pub struct SimParams {
    pub link: LinkConfig,
    pub dc: DcConfig,
    /// Maintenance cadence (loadAll granularity is `dc.load_interval`).
    pub tick: SimDuration,
    /// Measurement sampling period.
    pub sample: SimDuration,
    /// Local disk bandwidth for (re-)loads; the paper quotes 400 MB/s as
    /// the RAID reference point.
    pub disk_bytes_per_sec: f64,
    /// Cores per node (`None` = ample cores, §5.1–§5.3 model).
    pub cores_per_node: Option<usize>,
    /// Hard stop: queries unfinished by then count as failed.
    pub horizon: SimDuration,
}

impl Default for SimParams {
    fn default() -> Self {
        let dc = DcConfig::default();
        SimParams {
            link: LinkConfig {
                bandwidth_bps: 10_000_000_000,
                delay: SimDuration::from_micros(350),
                queue_capacity_bytes: dc.queue_capacity,
            },
            dc,
            tick: SimDuration::from_millis(50),
            sample: SimDuration::from_secs(1),
            disk_bytes_per_sec: 400.0 * 1024.0 * 1024.0,
            cores_per_node: None,
            horizon: SimDuration::from_secs(1_000),
        }
    }
}

impl SimParams {
    /// Fixed-LOIT variant for the §5.1 sweep.
    pub fn with_fixed_loit(mut self, loit: f64) -> Self {
        self.dc = self.dc.with_fixed_loit(loit);
        self
    }

    /// Keep link queue and DC queue capacities consistent.
    pub fn with_queue_capacity(mut self, bytes: u64) -> Self {
        self.dc.queue_capacity = bytes;
        self.link.queue_capacity_bytes = bytes;
        self
    }
}

/// Where a query settles (§6.1 nomadic queries).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Settle on the node the workload spec names (the paper's default:
    /// queries execute where they arrive).
    #[default]
    AsSpecified,
    /// Nomadic: auction the query to the cheapest node by the §6.1
    /// heuristic (data ownership, active queries, queue load).
    Bid,
}

enum Ev {
    Arrive(usize),
    BatMsg {
        node: usize,
        header: BatHeader,
    },
    ReqMsg {
        node: usize,
        req: ReqMsg,
    },
    DiskLoaded {
        node: usize,
        bat: BatId,
    },
    /// Per-BAT processing finished (PerBat model).
    ProcDone {
        q: usize,
        need_idx: usize,
    },
    /// Operator segment finished (PinSchedule model).
    SegDone {
        q: usize,
        seg: usize,
    },
    Tick {
        node: usize,
    },
    Sample,
    /// §6.3 pulsating rings: grow the ring by one node ("thrown back in
    /// when they are needed for their storage and processing resources").
    Grow,
}

struct SimNode {
    dc: DcNode,
    /// Clockwise data link to the successor.
    data: Link,
    /// Anti-clockwise request link to the predecessor.
    req: Link,
    cores: Option<CoreSched>,
    disk_free: SimTime,
}

struct QueryState {
    outstanding: usize,
    finished: bool,
    failed: bool,
}

/// §6.1 parent-query accounting when intra-query splitting is active:
/// the driver runs the *parts* as ordinary queries; measurements are
/// recorded once per *parent*, at its last part's completion plus the
/// intermediate-result combination cost.
struct SplitTracker {
    map: SplitMap,
    remaining: Vec<usize>,
    parent_failed: Vec<bool>,
    completed_parents: usize,
    failed_parents: usize,
}

impl SplitTracker {
    fn new(map: SplitMap) -> Self {
        let remaining = map.parts_of_parent.clone();
        let parent_failed = vec![false; map.parts_of_parent.len()];
        SplitTracker { map, remaining, parent_failed, completed_parents: 0, failed_parents: 0 }
    }
}

/// The simulated ring.
pub struct RingSim {
    params: SimParams,
    nodes: Vec<SimNode>,
    dataset: Dataset,
    queries: Vec<QuerySpec>,
    qstate: Vec<QueryState>,
    events: EventQueue<Ev>,
    /// Blocked pins per (node, bat): (query idx, need idx).
    blocked: HashMap<(usize, u32), Vec<(usize, usize)>>,
    /// Optional workload tag attribution for BATs (Fig. 8a).
    bat_tag: Option<Box<dyn Fn(BatId) -> Option<u32> + Send>>,
    placement: PlacementPolicy,
    split: Option<SplitTracker>,
    /// Node each query actually settled on (may differ from the spec
    /// under bid placement).
    settled_on: Vec<usize>,
    active_queries: Vec<usize>,
    m: Measurements,
    registered_so_far: usize,
    completed: usize,
    failed: usize,
}

impl RingSim {
    pub fn new(nodes: usize, dataset: Dataset, queries: Vec<QuerySpec>, params: SimParams) -> Self {
        assert!(nodes >= 2, "a storage ring needs at least two nodes");
        assert_eq!(
            params.link.queue_capacity_bytes, params.dc.queue_capacity,
            "link and DC queue capacities must agree"
        );
        let mut sim_nodes = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let mut dc = DcNode::new(NodeId(i as u16), params.dc.clone());
            for (b, (&size, &owner)) in dataset.sizes.iter().zip(dataset.owners.iter()).enumerate()
            {
                if owner == i {
                    dc.register_owned(BatId(b as u32), size);
                }
            }
            sim_nodes.push(SimNode {
                dc,
                data: Link::new(params.link),
                req: Link::new(params.link),
                cores: params.cores_per_node.map(CoreSched::new),
                disk_free: SimTime::ZERO,
            });
        }
        let mut events = EventQueue::new();
        for (q, spec) in queries.iter().enumerate() {
            spec.validate().expect("invalid query spec");
            assert!(spec.node < nodes, "query placed on nonexistent node");
            events.schedule(spec.arrival, Ev::Arrive(q));
        }
        // Stagger ticks so node maintenance does not synchronize.
        for i in 0..nodes {
            let offset = SimDuration(params.tick.0 * i as u64 / nodes as u64);
            events.schedule(SimTime::ZERO + offset, Ev::Tick { node: i });
        }
        events.schedule(SimTime::ZERO + params.sample, Ev::Sample);

        let qstate = queries
            .iter()
            .map(|s| QueryState { outstanding: s.needs.len(), finished: false, failed: false })
            .collect();

        let settled_on = queries.iter().map(|q| q.node).collect();
        RingSim {
            params,
            nodes: sim_nodes,
            dataset,
            queries,
            qstate,
            events,
            blocked: HashMap::new(),
            bat_tag: None,
            placement: PlacementPolicy::default(),
            split: None,
            settled_on,
            active_queries: vec![0; nodes],
            m: Measurements::default(),
            registered_so_far: 0,
            completed: 0,
            failed: 0,
        }
    }

    /// Use §6.1 nomadic placement instead of the spec's node.
    pub fn with_placement(mut self, policy: PlacementPolicy) -> Self {
        self.placement = policy;
        self
    }

    /// §6.1 intra-query parallelism: split every query into owner-affine
    /// sub-queries (see [`split::split_queries`]) and account lifetimes
    /// per *parent* query. Apply this directly after [`RingSim::new`] —
    /// it rebuilds the event schedule, so earlier [`Self::with_growth`]
    /// calls would be lost (placement and taggers are carried over).
    pub fn with_split(self, params: SplitParams) -> Self {
        assert_eq!(
            self.registered_so_far, 0,
            "with_split must be applied before the simulation runs"
        );
        let nodes = self.nodes.len();
        let (parts, map) = split::split_queries(&self.queries, &self.dataset, &params);
        let mut sim = RingSim::new(nodes, self.dataset, parts, self.params);
        sim.placement = self.placement;
        sim.bat_tag = self.bat_tag;
        sim.split = Some(SplitTracker::new(map));
        sim
    }

    /// §6.3 pulsating rings: schedule one ring-growth event per entry —
    /// at each time a fresh node (owning no data) joins between the
    /// current tail and node 0. "Updates to the ring are localized to
    /// its two (envisioned) neighbors": messages already in flight keep
    /// their destinations; only the succ/pred mapping changes.
    pub fn with_growth(mut self, times: &[SimTime]) -> Self {
        for &t in times {
            self.events.schedule(t, Ev::Grow);
        }
        self
    }

    fn grow(&mut self, now: SimTime) {
        let id = self.nodes.len();
        let mut dc = DcNode::new(NodeId(id as u16), self.params.dc.clone());
        dc.set_time(now);
        self.nodes.push(SimNode {
            dc,
            data: Link::new(self.params.link),
            req: Link::new(self.params.link),
            cores: self.params.cores_per_node.map(CoreSched::new),
            disk_free: now,
        });
        self.active_queries.push(0);
        self.events.schedule(now + self.params.tick, Ev::Tick { node: id });
        self.m.ring_sizes.push(now, self.nodes.len() as f64);
    }

    /// The §6.1 auction: every node bids on data ownership and current
    /// load; the cheapest wins.
    fn auction(&self, q: usize) -> usize {
        let needs = &self.queries[q].needs;
        let bids: Vec<datacyclotron::bidding::Bid> = (0..self.nodes.len())
            .map(|i| {
                let local = needs.iter().filter(|b| self.dataset.owner_of(**b) == i).count();
                let input = datacyclotron::bidding::BidInput {
                    local_fragments: local,
                    total_fragments: needs.len(),
                    active_queries: self.active_queries[i],
                    cores: self.params.cores_per_node.unwrap_or(4),
                    queue_load: self.nodes[i].dc.queue_load_fraction(),
                };
                datacyclotron::bidding::Bid {
                    node: NodeId(i as u16),
                    price: datacyclotron::bidding::price(&input),
                }
            })
            .collect();
        datacyclotron::bidding::choose(&bids).map(|n| n.0 as usize).unwrap_or(0)
    }

    /// Attribute ring space to workload tags (Fig. 8a).
    pub fn with_bat_tagger(mut self, f: impl Fn(BatId) -> Option<u32> + Send + 'static) -> Self {
        self.bat_tag = Some(Box::new(f));
        self
    }

    fn succ(&self, n: usize) -> usize {
        (n + 1) % self.nodes.len()
    }

    fn pred(&self, n: usize) -> usize {
        (n + self.nodes.len() - 1) % self.nodes.len()
    }

    /// Synchronize a node's clock and queue mirror before a handler runs.
    fn sync(&mut self, n: usize, now: SimTime) {
        let queued = self.nodes[n].data.queued_bytes(now);
        let dc = &mut self.nodes[n].dc;
        dc.set_time(now);
        dc.set_queue_bytes(queued);
    }

    /// Run to completion (all queries finished/failed) or the horizon.
    pub fn run(mut self) -> Measurements {
        let total = self.queries.len();
        let horizon = SimTime::ZERO + self.params.horizon;
        let mut last_now = SimTime::ZERO;
        while let Some((now, ev)) = self.events.pop() {
            last_now = now;
            if now > horizon {
                break;
            }
            self.dispatch(now, ev);
            if self.completed + self.failed == total {
                break;
            }
        }
        self.finalize(last_now);
        self.m
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive(q) => self.on_arrive(now, q),
            Ev::BatMsg { node, header } => {
                self.sync(node, now);
                let effects = self.nodes[node].dc.on_bat(header);
                self.apply(now, node, effects);
            }
            Ev::ReqMsg { node, req } => {
                self.sync(node, now);
                let effects = self.nodes[node].dc.on_request(req);
                self.apply(now, node, effects);
            }
            Ev::DiskLoaded { node, bat } => {
                self.sync(node, now);
                let effects = self.nodes[node].dc.bat_loaded(bat);
                self.apply(now, node, effects);
            }
            Ev::ProcDone { q, need_idx } => self.on_proc_done(now, q, need_idx),
            Ev::SegDone { q, seg } => self.on_seg_done(now, q, seg),
            Ev::Tick { node } => {
                self.sync(node, now);
                let effects = self.nodes[node].dc.tick();
                self.apply(now, node, effects);
                self.events.schedule(now + self.params.tick, Ev::Tick { node });
            }
            Ev::Sample => {
                self.sample(now);
                self.events.schedule(now + self.params.sample, Ev::Sample);
            }
            Ev::Grow => self.grow(now),
        }
    }

    fn on_arrive(&mut self, now: SimTime, q: usize) {
        // Under §6.1 splitting, the registered series counts parents
        // (one primary part each), not parts.
        if self.split.as_ref().is_none_or(|t| t.map.is_primary[q]) {
            self.registered_so_far += 1;
            self.m.registered.push(now, self.registered_so_far as f64);
        }
        let spec = self.queries[q].clone();
        let node = match self.placement {
            PlacementPolicy::AsSpecified => spec.node,
            PlacementPolicy::Bid => self.auction(q),
        };
        self.settled_on[q] = node;
        self.active_queries[node] += 1;
        let qid = QueryId(q as u64);
        self.sync(node, now);
        // Requests for the whole footprint go out immediately (the DC
        // optimizer hoists them, §4.1).
        for &bat in &spec.needs {
            let effects = self.nodes[node].dc.local_request(qid, bat);
            self.apply(now, node, effects);
        }
        match &spec.model {
            ExecModel::PerBat { proc } => {
                // All pins issue concurrently (dataflow threads).
                for (i, &bat) in spec.needs.iter().enumerate() {
                    let (outcome, effects) = self.nodes[node].dc.pin(qid, bat);
                    self.apply(now, node, effects);
                    match outcome {
                        PinOutcome::OwnedLocal | PinOutcome::Cached => {
                            self.events.schedule(now + proc[i], Ev::ProcDone { q, need_idx: i });
                        }
                        PinOutcome::MustWait => {
                            self.blocked.entry((node, bat.0)).or_default().push((q, i));
                        }
                    }
                }
            }
            ExecModel::PinSchedule { segments } => {
                // First operator segment runs before the first pin.
                let end = self.schedule_segment(node, now, segments[0]);
                self.events.schedule(end, Ev::SegDone { q, seg: 0 });
            }
        }
    }

    /// PerBat: one fragment fully processed.
    fn on_proc_done(&mut self, now: SimTime, q: usize, need_idx: usize) {
        let spec = &self.queries[q];
        let node = self.settled_on[q];
        let bat = spec.needs[need_idx];
        let qid = QueryId(q as u64);
        self.sync(node, now);
        let effects = self.nodes[node].dc.unpin(qid, bat);
        self.apply(now, node, effects);
        let st = &mut self.qstate[q];
        st.outstanding -= 1;
        if st.outstanding == 0 && !st.finished {
            self.finish_query(now, q);
        }
    }

    /// PinSchedule: an operator segment completed; issue the next pin or
    /// finish.
    fn on_seg_done(&mut self, now: SimTime, q: usize, seg: usize) {
        let spec = self.queries[q].clone();
        let node = self.settled_on[q];
        let qid = QueryId(q as u64);
        let ExecModel::PinSchedule { segments } = &spec.model else {
            unreachable!("SegDone only fires for PinSchedule queries")
        };
        if seg == spec.needs.len() {
            // Final segment done: the query is finished.
            self.sync(node, now);
            for &bat in &spec.needs {
                let effects = self.nodes[node].dc.unpin(qid, bat);
                self.apply(now, node, effects);
            }
            self.finish_query(now, q);
            return;
        }
        // Pin the next fragment.
        let bat = spec.needs[seg];
        self.sync(node, now);
        let (outcome, effects) = self.nodes[node].dc.pin(qid, bat);
        self.apply(now, node, effects);
        match outcome {
            PinOutcome::OwnedLocal | PinOutcome::Cached => {
                let end = self.schedule_segment(node, now, segments[seg + 1]);
                self.events.schedule(end, Ev::SegDone { q, seg: seg + 1 });
            }
            PinOutcome::MustWait => {
                self.blocked.entry((node, bat.0)).or_default().push((q, seg));
            }
        }
    }

    fn schedule_segment(&mut self, node: usize, ready: SimTime, dur: SimDuration) -> SimTime {
        match &mut self.nodes[node].cores {
            Some(c) => c.schedule(ready, dur),
            None => ready + dur,
        }
    }

    fn finish_query(&mut self, now: SimTime, q: usize) {
        let st = &mut self.qstate[q];
        if st.finished || st.failed {
            return;
        }
        st.finished = true;
        self.completed += 1;
        // Measurement: per query, or — under §6.1 splitting — per
        // parent at its last part, plus the combination cost of merging
        // the parts' intermediate results (charged to the lifetime; the
        // cumulative series stays timestamp-monotone at `now`).
        match &mut self.split {
            None => {
                let spec = &self.queries[q];
                let lifetime = now.since(spec.arrival).as_secs_f64();
                self.m.lifetimes.push((spec.arrival.as_secs_f64(), lifetime, spec.tag));
                self.m.finished.push(now, self.completed as f64);
                let tag_series = self.m.finished_by_tag.entry(spec.tag).or_default();
                let next = tag_series.last_value().unwrap_or(0.0) + 1.0;
                tag_series.push(now, next);
            }
            Some(tr) => {
                let parent = tr.map.parent_of[q];
                tr.remaining[parent] -= 1;
                if tr.remaining[parent] == 0 && !tr.parent_failed[parent] {
                    tr.completed_parents += 1;
                    let done = now + tr.map.merge_cost_of(parent);
                    let arrival = tr.map.parent_arrival[parent];
                    let tag = tr.map.parent_tag[parent];
                    let lifetime = done.since(arrival).as_secs_f64();
                    self.m.lifetimes.push((arrival.as_secs_f64(), lifetime, tag));
                    self.m.finished.push(now, tr.completed_parents as f64);
                    let tag_series = self.m.finished_by_tag.entry(tag).or_default();
                    let next = tag_series.last_value().unwrap_or(0.0) + 1.0;
                    tag_series.push(now, next);
                }
            }
        }
        let node = self.settled_on[q];
        let qid = QueryId(q as u64);
        self.active_queries[node] = self.active_queries[node].saturating_sub(1);
        let effects = self.nodes[node].dc.query_done(qid);
        self.apply(now, node, effects);
    }

    fn fail_query(&mut self, now: SimTime, q: usize) {
        let st = &mut self.qstate[q];
        if st.finished || st.failed {
            return;
        }
        st.failed = true;
        self.failed += 1;
        if let Some(tr) = &mut self.split {
            let parent = tr.map.parent_of[q];
            if !tr.parent_failed[parent] {
                tr.parent_failed[parent] = true;
                tr.failed_parents += 1;
            }
        }
        let node = self.settled_on[q];
        self.active_queries[node] = self.active_queries[node].saturating_sub(1);
        let effects = self.nodes[node].dc.query_done(QueryId(q as u64));
        self.apply(now, node, effects);
    }

    fn apply(&mut self, now: SimTime, node: usize, effects: Vec<Effect>) {
        for e in effects {
            match e {
                Effect::SendBat(h) => {
                    let succ = self.succ(node);
                    match self.nodes[node].data.enqueue(now, h.wire_size()) {
                        EnqueueOutcome::Accepted { arrives, .. } => {
                            self.events.schedule(arrives, Ev::BatMsg { node: succ, header: h });
                        }
                        EnqueueOutcome::Dropped => {
                            self.m.bat_drops += 1;
                        }
                    }
                }
                Effect::SendRequest(r) => {
                    let pred = self.pred(node);
                    match self.nodes[node].req.enqueue(now, datacyclotron::msg::REQUEST_WIRE_BYTES)
                    {
                        EnqueueOutcome::Accepted { arrives, .. } => {
                            self.events.schedule(arrives, Ev::ReqMsg { node: pred, req: r });
                        }
                        EnqueueOutcome::Dropped => {
                            self.m.request_drops += 1;
                        }
                    }
                }
                Effect::LoadFromDisk { bat, size } => {
                    let n = &mut self.nodes[node];
                    let dur =
                        SimDuration::from_secs_f64(size as f64 / self.params.disk_bytes_per_sec);
                    let start = n.disk_free.max(now);
                    let done = start + dur;
                    n.disk_free = done;
                    self.events.schedule(done, Ev::DiskLoaded { node, bat });
                }
                Effect::Deliver { header, queries } => {
                    self.deliver(now, node, header, &queries);
                }
                Effect::Unload(_) | Effect::CacheInsert(_) | Effect::CacheEvict(_) => {}
                Effect::QueryError { queries, .. } => {
                    for qid in queries {
                        self.fail_query(now, qid.0 as usize);
                    }
                }
            }
        }
    }

    fn deliver(&mut self, now: SimTime, node: usize, header: BatHeader, queries: &[QueryId]) {
        let Some(waiters) = self.blocked.remove(&(node, header.bat.0)) else {
            return;
        };
        let (served, kept): (Vec<_>, Vec<_>) =
            waiters.into_iter().partition(|&(q, _)| queries.contains(&QueryId(q as u64)));
        if !kept.is_empty() {
            self.blocked.insert((node, header.bat.0), kept);
        }
        for (q, need_idx) in served {
            let spec = self.queries[q].clone();
            match &spec.model {
                ExecModel::PerBat { proc } => {
                    self.events.schedule(now + proc[need_idx], Ev::ProcDone { q, need_idx });
                }
                ExecModel::PinSchedule { segments } => {
                    // The pin at `need_idx` unblocked: run the next segment.
                    let end = self.schedule_segment(node, now, segments[need_idx + 1]);
                    self.events.schedule(end, Ev::SegDone { q, seg: need_idx + 1 });
                }
            }
        }
    }

    fn sample(&mut self, now: SimTime) {
        let (mut bytes, mut count) = (0u64, 0usize);
        let mut by_tag: HashMap<u32, u64> = HashMap::new();
        for n in &self.nodes {
            for (bat, owned) in n.dc.s1.iter() {
                if matches!(owned.state, OwnedState::InRing { .. } | OwnedState::Loading) {
                    bytes += owned.size;
                    count += 1;
                    if let Some(tagger) = &self.bat_tag {
                        if let Some(t) = tagger(bat) {
                            *by_tag.entry(t).or_default() += owned.size;
                        }
                    }
                }
            }
        }
        self.m.ring_bytes.push(now, bytes as f64);
        self.m.ring_bats.push(now, count as f64);
        if self.bat_tag.is_some() {
            for (t, b) in by_tag {
                self.m.ring_bytes_by_tag.entry(t).or_default().push(now, b as f64);
            }
        }
    }

    fn finalize(&mut self, now: SimTime) {
        // Fail anything still outstanding (horizon cut-off).
        for q in 0..self.queries.len() {
            if !self.qstate[q].finished && !self.qstate[q].failed {
                self.fail_query(now, q);
            }
        }
        self.sample(now);
        match &self.split {
            Some(tr) => {
                self.m.completed = tr.completed_parents;
                self.m.failed = tr.failed_parents;
            }
            None => {
                self.m.completed = self.completed;
                self.m.failed = self.failed;
            }
        }
        self.m.makespan = self.m.lifetimes.iter().map(|&(a, l, _)| a + l).fold(0.0, f64::max);

        // Per-BAT owner tallies.
        let n_bats = self.dataset.len();
        self.m.bat_touches = vec![0; n_bats];
        self.m.bat_requests = vec![0; n_bats];
        self.m.bat_loads = vec![0; n_bats];
        self.m.bat_max_cycles = vec![0; n_bats];
        for n in &self.nodes {
            for (bat, owned) in n.dc.s1.iter() {
                let i = bat.0 as usize;
                self.m.bat_touches[i] += owned.touches;
                self.m.bat_requests[i] += owned.requests_seen;
                self.m.bat_loads[i] += owned.loads as u64;
                self.m.bat_max_cycles[i] = self.m.bat_max_cycles[i].max(owned.max_cycles);
            }
            self.m.stats.merge(&n.dc.stats);
        }
        for (&bat, &lat) in self.m.stats.max_request_latency.clone().iter() {
            let secs = lat.as_secs_f64();
            let slot = self.m.max_request_latency.entry(bat.0).or_insert(0.0);
            if secs > *slot {
                *slot = secs;
            }
        }

        // CPU utilization against the makespan (bounded-cores runs).
        if self.params.cores_per_node.is_some() && self.m.makespan > 0.0 {
            let makespan = SimDuration::from_secs_f64(self.m.makespan);
            let total: f64 = self
                .nodes
                .iter()
                .filter_map(|n| n.cores.as_ref().map(|c| c.utilization(makespan)))
                .sum();
            self.m.cpu_utilization = total / self.nodes.len() as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_workloads::micro::{self, MicroParams};

    fn small_dataset(nodes: usize) -> Dataset {
        Dataset::uniform(40, 200 << 20, 2 << 20, 8 << 20, nodes, 7)
    }

    fn small_params() -> SimParams {
        SimParams::default().with_queue_capacity(64 << 20)
    }

    #[test]
    fn all_queries_complete_small_uniform() {
        let nodes = 4;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 5.0,
                duration: SimDuration::from_secs(4),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            3,
        );
        let total = qs.len();
        assert_eq!(total, 80);
        let m = RingSim::new(nodes, ds, qs, small_params()).run();
        assert_eq!(m.completed, total, "failed={} drops={}", m.failed, m.bat_drops);
        assert_eq!(m.failed, 0);
        assert!(m.makespan > 0.0);
        assert!(m.mean_lifetime() > 0.1, "lifetime must include processing");
    }

    #[test]
    fn deterministic_runs() {
        let nodes = 3;
        let mk = || {
            let ds = small_dataset(nodes);
            let qs = micro::generate(
                &MicroParams {
                    queries_per_second_per_node: 4.0,
                    duration: SimDuration::from_secs(3),
                    ..MicroParams::default()
                },
                &ds,
                nodes,
                11,
            );
            RingSim::new(nodes, ds, qs, small_params()).run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.lifetimes, b.lifetimes, "simulation must be deterministic");
        assert_eq!(a.ring_bytes.points, b.ring_bytes.points);
    }

    #[test]
    fn hot_set_occupies_ring() {
        let nodes = 4;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 10.0,
                duration: SimDuration::from_secs(5),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            5,
        );
        let m = RingSim::new(nodes, ds, qs, small_params()).run();
        let peak = m.ring_bytes.points.iter().map(|&(_, v)| v).fold(0.0, f64::max);
        assert!(peak > 10_000_000.0, "hot set never built up: peak={peak}");
        assert!(m.stats.bats_loaded > 0);
        assert!(m.stats.bats_forwarded > 0);
    }

    #[test]
    fn request_latency_recorded() {
        let nodes = 3;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 3.0,
                duration: SimDuration::from_secs(2),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            5,
        );
        let m = RingSim::new(nodes, ds, qs, small_params()).run();
        assert!(!m.max_request_latency.is_empty());
        for (_, &lat) in m.max_request_latency.iter() {
            assert!((0.0..60.0).contains(&lat), "latency {lat}");
        }
    }

    #[test]
    fn pin_schedule_model_with_cores() {
        use dc_workloads::spec::{ExecModel, QuerySpec};
        let nodes = 2;
        let ds = Dataset::uniform(6, 24 << 20, 2 << 20, 6 << 20, nodes, 1);
        // One query per node pinning two remote fragments sequentially.
        let mut qs = Vec::new();
        for node in 0..nodes {
            let remote = ds.remote_bats(node);
            qs.push(QuerySpec {
                arrival: SimTime::from_millis(10 * node as u64),
                node,
                needs: vec![remote[0], remote[1]],
                model: ExecModel::PinSchedule {
                    segments: vec![
                        SimDuration::from_millis(50),
                        SimDuration::from_millis(100),
                        SimDuration::from_millis(200),
                    ],
                },
                tag: 1,
            });
        }
        let mut params = small_params();
        params.cores_per_node = Some(4);
        let m = RingSim::new(nodes, ds, qs, params).run();
        assert_eq!(m.completed, 2);
        assert!(m.cpu_utilization > 0.0 && m.cpu_utilization <= 1.0);
        // Lifetime at least the net work (350 ms).
        for &(_, l, _) in &m.lifetimes {
            assert!(l >= 0.35, "lifetime {l}");
        }
    }

    #[test]
    fn tagged_ring_space_tracked() {
        let nodes = 3;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 30.0,
                duration: SimDuration::from_secs(3),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            9,
        );
        // Sample densely: in a small fast ring the hot set lives only a
        // few cycles (tens of milliseconds) after interest fades.
        let mut params = small_params();
        params.sample = SimDuration::from_millis(20);
        let m = RingSim::new(nodes, ds, qs, params).with_bat_tagger(|b| Some(b.0 % 2)).run();
        assert!(m.ring_bytes_by_tag.contains_key(&0));
        assert!(m.ring_bytes_by_tag.contains_key(&1));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node_ring() {
        let ds = small_dataset(1);
        let _ = RingSim::new(1, ds, vec![], small_params());
    }

    #[test]
    fn pulsating_ring_grows_mid_run() {
        let nodes = 3;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 10.0,
                duration: SimDuration::from_secs(6),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            31,
        );
        let total = qs.len();
        let m = RingSim::new(nodes, ds, qs, small_params())
            .with_growth(&[SimTime::from_secs(2), SimTime::from_secs(4)])
            .run();
        assert_eq!(m.completed, total, "growth must not lose queries (failed={})", m.failed);
        let sizes: Vec<f64> = m.ring_sizes.points.iter().map(|&(_, v)| v).collect();
        assert_eq!(sizes, vec![4.0, 5.0], "two growth events recorded");
    }

    #[test]
    fn grown_node_participates_in_forwarding() {
        let nodes = 2;
        let ds = small_dataset(nodes);
        // Steady traffic well past the growth instant.
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 15.0,
                duration: SimDuration::from_secs(8),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            33,
        );
        let total = qs.len();
        let sim =
            RingSim::new(nodes, ds, qs, small_params()).with_growth(&[SimTime::from_millis(500)]);
        let m = sim.run();
        assert_eq!(m.completed, total);
        // The joined node sits on the data path 2→0, so it must have
        // forwarded BATs (it owns nothing, so forwards are its only role).
        assert!(
            m.stats.bats_forwarded > 0,
            "ring-wide forwarding must include the new node's hops"
        );
    }

    #[test]
    fn split_queries_complete_once_per_parent() {
        let nodes = 4;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 6.0,
                duration: SimDuration::from_secs(4),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            21,
        );
        let total = qs.len();
        let m =
            RingSim::new(nodes, ds, qs, small_params()).with_split(SplitParams::default()).run();
        // Exactly one lifetime per parent, never per part.
        assert_eq!(m.completed, total, "failed={}", m.failed);
        assert_eq!(m.lifetimes.len(), total);
        assert_eq!(m.failed, 0);
        // The registered series counts parents too.
        assert_eq!(m.registered.last_value(), Some(total as f64));
        assert_eq!(m.finished.last_value(), Some(total as f64));
    }

    #[test]
    fn splitting_reduces_ring_traffic() {
        let nodes = 4;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 6.0,
                duration: SimDuration::from_secs(4),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            23,
        );
        let unsplit = RingSim::new(nodes, ds.clone(), qs.clone(), small_params()).run();
        let split =
            RingSim::new(nodes, ds, qs, small_params()).with_split(SplitParams::default()).run();
        assert_eq!(unsplit.completed, split.completed);
        // Owner-affine parts pin locally: fewer fragments ever need the
        // ring. (The micro workload requests remote BATs only, so the
        // unsplit run requests every pinned fragment.)
        assert!(
            split.stats.requests_dispatched < unsplit.stats.requests_dispatched / 2,
            "split {} vs unsplit {}",
            split.stats.requests_dispatched,
            unsplit.stats.requests_dispatched
        );
    }

    #[test]
    fn split_lifetime_includes_merge_cost() {
        use dc_workloads::spec::{ExecModel, QuerySpec};
        let nodes = 2;
        // Both fragments owned by distinct nodes; the query splits into
        // two local parts with 100 ms processing each, so the parent
        // lifetime is 100 ms + one merge step.
        let ds = Dataset { sizes: vec![1 << 20, 1 << 20], owners: vec![0, 1] };
        let q = QuerySpec {
            arrival: SimTime::ZERO,
            node: 0,
            needs: vec![BatId(0), BatId(1)],
            model: ExecModel::PerBat { proc: vec![SimDuration::from_millis(100); 2] },
            tag: 0,
        };
        let merge = SimDuration::from_millis(40);
        let m = RingSim::new(nodes, ds, vec![q], small_params())
            .with_split(SplitParams { max_parts: 4, merge_cost: merge })
            .run();
        assert_eq!(m.completed, 1);
        let (_, life, _) = m.lifetimes[0];
        assert!((life - 0.140).abs() < 1e-9, "lifetime {life}");
    }

    #[test]
    fn split_composes_with_bid_placement() {
        let nodes = 4;
        let ds = small_dataset(nodes);
        let qs = micro::generate(
            &MicroParams {
                queries_per_second_per_node: 5.0,
                duration: SimDuration::from_secs(3),
                ..MicroParams::default()
            },
            &ds,
            nodes,
            29,
        );
        let total = qs.len();
        let m = RingSim::new(nodes, ds, qs, small_params())
            .with_placement(PlacementPolicy::Bid)
            .with_split(SplitParams::default())
            .run();
        assert_eq!(m.completed, total);
    }

    #[test]
    fn split_is_deterministic() {
        let nodes = 3;
        let mk = || {
            let ds = small_dataset(nodes);
            let qs = micro::generate(
                &MicroParams {
                    queries_per_second_per_node: 4.0,
                    duration: SimDuration::from_secs(3),
                    ..MicroParams::default()
                },
                &ds,
                nodes,
                11,
            );
            RingSim::new(nodes, ds, qs, small_params()).with_split(SplitParams::default()).run()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.lifetimes, b.lifetimes);
        assert_eq!(a.stats.requests_dispatched, b.stats.requests_dispatched);
    }

    #[test]
    fn bid_placement_completes_and_uses_ownership() {
        use dc_workloads::spec::{ExecModel, QuerySpec};
        let nodes = 4;
        let ds = small_dataset(nodes);
        // Queries whose footprint is owned by one node each; the spec
        // places them all on node 0, the auction should spread them.
        let mut qs = Vec::new();
        for i in 0..24u32 {
            let bat = BatId(i % ds.len() as u32);
            qs.push(QuerySpec {
                arrival: SimTime::from_millis(i as u64 * 10),
                node: 0,
                needs: vec![bat],
                model: ExecModel::PerBat { proc: vec![SimDuration::from_millis(50)] },
                tag: 0,
            });
        }
        let m = RingSim::new(nodes, ds.clone(), qs.clone(), small_params())
            .with_placement(PlacementPolicy::Bid)
            .run();
        assert_eq!(m.completed, 24);
        // Ownership placement means no ring traffic at all for
        // single-fragment queries: every pin resolves locally.
        assert_eq!(m.stats.requests_dispatched, 0, "bids should land on owners");
        // Contrast: fixed placement on node 0 must use the ring.
        let m0 = RingSim::new(nodes, ds, qs, small_params()).run();
        assert!(m0.stats.requests_dispatched > 0);
    }
}
