//! # ringsim — the Data Cyclotron experiment rig
//!
//! Drives the protocol state machines of `datacyclotron` with the
//! deterministic discrete-event simulator of `netsim`, reproducing the
//! paper's NS-2 setup: a ring of nodes joined by duplex links (10 Gb/s,
//! 350 µs, DropTail), BATs clockwise, requests anti-clockwise, per-node
//! 200 MB BAT queues.
//!
//! Two execution models are supported, matching the paper's evaluation:
//! per-BAT processing with ample cores (§5.1–§5.3) and operator-segment
//! scheduling on a fixed number of cores with the pin-calibration rule
//! (§5.4). All measurements needed to regenerate Figures 6–11 and
//! Table 4 are collected in [`Measurements`].

pub mod cores;
pub mod driver;
pub mod measure;
pub mod report;
pub mod split;

pub use cores::CoreSched;
pub use driver::{PlacementPolicy, RingSim, SimParams};
pub use measure::Measurements;
pub use split::{SplitMap, SplitParams};
