//! Report rendering shared by the harness binaries: ASCII tables and
//! plots for stdout, CSV series for `target/experiments/`.

use netsim::metrics::TimeSeries;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The directory experiment CSVs land in.
pub fn experiments_dir() -> PathBuf {
    let root = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    Path::new(&root).join("experiments")
}

/// Write a CSV under `target/experiments/` and return its path.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// A simple fixed-width ASCII table.
pub struct AsciiTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    pub fn new(headers: &[&str]) -> Self {
        AsciiTable { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in widths.iter().take(ncols) {
                let _ = write!(out, "+-{}-", "-".repeat(*w));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, "| {h:>w$} ", w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                let _ = write!(out, "| {c:>w$} ", w = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

/// Render a time series as a coarse ASCII plot (terminal "figure"),
/// `width` columns by `height` rows, plus axis annotations.
pub fn ascii_plot(
    title: &str,
    series: &[(&str, &TimeSeries)],
    width: usize,
    height: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "── {title} ──");
    let (mut tmax, mut vmax) = (0.0f64, 0.0f64);
    for (_, s) in series {
        for &(t, v) in &s.points {
            tmax = tmax.max(t);
            vmax = vmax.max(v);
        }
    }
    if tmax <= 0.0 || vmax <= 0.0 {
        out.push_str("(no data)\n");
        return out;
    }
    let marks = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(t, v) in &s.points {
            let x = ((t / tmax) * (width - 1) as f64).round() as usize;
            let y = ((v / vmax) * (height - 1) as f64).round() as usize;
            grid[height - 1 - y][x.min(width - 1)] = mark;
        }
    }
    let _ = writeln!(out, "{vmax:>12.0} ┐");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:>12} │{line}", "");
    }
    let _ = writeln!(out, "{:>12} └{}", 0, "─".repeat(width));
    let _ = writeln!(out, "{:>14}0{:>w$.0}s", "", tmax, w = width - 1);
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "    {} {}", marks[si % marks.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = AsciiTable::new(&["#nodes", "exec(sec)", "throughput"]);
        t.row(&["1".into(), "317".into(), "3.8".into()]);
        t.row(&["8".into(), "371.27".into(), "25.8".into()]);
        let s = t.render();
        assert!(s.contains("#nodes"));
        assert!(s.contains("371.27"));
        let lines: Vec<&str> = s.lines().collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "all lines same width:\n{s}");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_arity() {
        let mut t = AsciiTable::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn plot_handles_data_and_empty() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push_secs(i as f64, (i * i) as f64);
        }
        let p = ascii_plot("test", &[("quad", &s)], 40, 10);
        assert!(p.contains("test"));
        assert!(p.contains('*'));
        let empty = TimeSeries::new();
        let p = ascii_plot("none", &[("e", &empty)], 40, 10);
        assert!(p.contains("no data"));
    }

    #[test]
    fn csv_written_to_experiments_dir() {
        let path = write_csv("unit_test_report.csv", "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert!(back.contains("a,b"));
        std::fs::remove_file(path).ok();
    }
}
