//! The per-node core scheduler for the §5.4 calibration: "Each node is
//! composed by four cores and the calls scheduling is distributed
//! amongst them. The scheduling at each core is done using a time line.
//! An operator execution is scheduled at certain moment and it has a
//! duration … A core can only be used for a single operator."

use netsim::{SimDuration, SimTime};

pub struct CoreSched {
    free_at: Vec<SimTime>,
    /// Total busy core-time (CPU% numerator).
    pub busy: SimDuration,
}

impl CoreSched {
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0);
        CoreSched { free_at: vec![SimTime::ZERO; cores], busy: SimDuration::ZERO }
    }

    pub fn cores(&self) -> usize {
        self.free_at.len()
    }

    /// Schedule a segment that becomes ready at `ready`; returns its
    /// completion time on the earliest-free core.
    pub fn schedule(&mut self, ready: SimTime, dur: SimDuration) -> SimTime {
        let (idx, _) =
            self.free_at.iter().enumerate().min_by_key(|&(_, &t)| t).expect("at least one core");
        let start = self.free_at[idx].max(ready);
        let end = start + dur;
        self.free_at[idx] = end;
        self.busy = self.busy + dur;
        end
    }

    /// Utilization over a makespan.
    pub fn utilization(&self, makespan: SimDuration) -> f64 {
        if makespan == SimDuration::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (self.cores() as f64 * makespan.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_on_one_core() {
        let mut s = CoreSched::new(1);
        let e1 = s.schedule(SimTime::ZERO, SimDuration::from_millis(10));
        let e2 = s.schedule(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(e1.as_millis(), 10);
        assert_eq!(e2.as_millis(), 20, "second op waits for the core");
    }

    #[test]
    fn parallel_on_multiple_cores() {
        let mut s = CoreSched::new(4);
        let ends: Vec<u64> = (0..4)
            .map(|_| s.schedule(SimTime::ZERO, SimDuration::from_millis(10)).as_millis())
            .collect();
        assert_eq!(ends, vec![10, 10, 10, 10]);
        let e5 = s.schedule(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(e5.as_millis(), 20);
    }

    #[test]
    fn ready_time_respected() {
        let mut s = CoreSched::new(2);
        let e = s.schedule(SimTime::from_millis(100), SimDuration::from_millis(5));
        assert_eq!(e.as_millis(), 105, "cannot start before data is ready");
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut s = CoreSched::new(2);
        s.schedule(SimTime::ZERO, SimDuration::from_millis(10));
        s.schedule(SimTime::ZERO, SimDuration::from_millis(30));
        let u = s.utilization(SimDuration::from_millis(40));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
        assert_eq!(s.utilization(SimDuration::ZERO), 0.0);
    }
}
