//! Measurement collection for the paper's figures and tables.

use datacyclotron::{BatId, NodeStats};
use netsim::metrics::TimeSeries;
use std::collections::BTreeMap;

/// Everything a harness needs to regenerate a figure.
#[derive(Default)]
pub struct Measurements {
    /// Cumulative queries registered over time (Fig. 6a "regist. queries").
    pub registered: TimeSeries,
    /// Cumulative queries finished over time (Fig. 6a).
    pub finished: TimeSeries,
    /// Finished per workload tag (Fig. 8b).
    pub finished_by_tag: BTreeMap<u32, TimeSeries>,
    /// Hot-set bytes in the ring over time (Fig. 7a).
    pub ring_bytes: TimeSeries,
    /// Hot-set BAT count over time (Fig. 7b).
    pub ring_bats: TimeSeries,
    /// Hot-set bytes attributed per workload tag (Fig. 8a).
    pub ring_bytes_by_tag: BTreeMap<u32, TimeSeries>,
    /// (arrival secs, lifetime secs, tag) per finished query (Fig. 6b).
    pub lifetimes: Vec<(f64, f64, u32)>,
    pub completed: usize,
    pub failed: usize,
    /// Last query completion time in seconds.
    pub makespan: f64,
    /// Per-BAT owner-side tallies (Figs 9a/9b/11); indexed by BatId.
    pub bat_touches: Vec<u64>,
    pub bat_requests: Vec<u64>,
    pub bat_loads: Vec<u64>,
    pub bat_max_cycles: Vec<u32>,
    /// Ring-wide max request latency per BAT in seconds (Fig. 10).
    pub max_request_latency: BTreeMap<u32, f64>,
    /// DropTail losses.
    pub bat_drops: u64,
    pub request_drops: u64,
    /// CPU utilization (Table 4; only meaningful with bounded cores).
    pub cpu_utilization: f64,
    /// Ring size over time (§6.3 pulsating rings; one point per growth).
    pub ring_sizes: TimeSeries,
    /// Merged protocol counters.
    pub stats: NodeStats,
}

impl Measurements {
    /// Mean lifetime in seconds.
    pub fn mean_lifetime(&self) -> f64 {
        if self.lifetimes.is_empty() {
            return 0.0;
        }
        self.lifetimes.iter().map(|&(_, l, _)| l).sum::<f64>() / self.lifetimes.len() as f64
    }

    /// Lifetime quantile (q in `[0, 1]`).
    pub fn lifetime_quantile(&self, q: f64) -> f64 {
        if self.lifetimes.is_empty() {
            return 0.0;
        }
        let mut ls: Vec<f64> = self.lifetimes.iter().map(|&(_, l, _)| l).collect();
        ls.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((q.clamp(0.0, 1.0)) * (ls.len() - 1) as f64).round() as usize;
        ls[idx]
    }

    /// Throughput over the whole run (queries per second).
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.makespan
    }

    /// Queries finished by `t` seconds (reading the cumulative series).
    pub fn finished_at(&self, t: f64) -> f64 {
        self.finished.value_at(t).unwrap_or(0.0)
    }

    pub fn max_latency_of(&self, bat: BatId) -> Option<f64> {
        self.max_request_latency.get(&bat.0).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_stats() {
        let m = Measurements {
            lifetimes: vec![(0.0, 1.0, 0), (0.0, 3.0, 0), (0.0, 2.0, 0)],
            ..Measurements::default()
        };
        assert!((m.mean_lifetime() - 2.0).abs() < 1e-9);
        assert_eq!(m.lifetime_quantile(0.0), 1.0);
        assert_eq!(m.lifetime_quantile(1.0), 3.0);
        assert_eq!(m.lifetime_quantile(0.5), 2.0);
    }

    #[test]
    fn throughput_guards_zero() {
        let m = Measurements::default();
        assert_eq!(m.throughput(), 0.0);
        let m = Measurements { completed: 100, makespan: 50.0, ..Measurements::default() };
        assert!((m.throughput() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn finished_at_reads_series() {
        let mut m = Measurements::default();
        m.finished.push_secs(1.0, 10.0);
        m.finished.push_secs(2.0, 25.0);
        assert_eq!(m.finished_at(0.5), 0.0);
        assert_eq!(m.finished_at(1.5), 10.0);
        assert_eq!(m.finished_at(9.0), 25.0);
    }
}
