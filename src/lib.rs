//! # data-cyclotron — umbrella crate
//!
//! Re-exports the whole Data Cyclotron workspace behind one dependency,
//! and hosts the runnable `examples/` and the cross-crate integration
//! `tests/`. See the individual crates for the substance:
//!
//! * [`datacyclotron`] — the ring protocols and live engine (the paper's
//!   contribution),
//! * [`batstore`] / [`mal`] / [`sqlfront`] — the MonetDB-style DBMS layer,
//! * [`netsim`] / [`ringsim`] — the simulator and the experiment rig,
//! * [`dc_transport`] — the TCP ring transport and the `dc-node`
//!   distributed server binary (the in-process fabric lives in
//!   `datacyclotron::transport`),
//! * [`dc_workloads`] — the paper's workload generators,
//! * [`dc_broadcast`] — the §7 related-work baselines (DataCycle,
//!   Broadcast Disks, on-demand pull, IPP).

pub use batstore;
pub use datacyclotron;
pub use dc_broadcast;
pub use dc_transport;
pub use dc_workloads;
pub use mal;
pub use netsim;
pub use ringsim;
pub use sqlfront;
